"""Unit and scenario tests for crash + independent recovery."""

import pytest

from repro.core.domain import CounterDomain
from repro.core.recovery import derive_incoming_cumulative, recover_site
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    TransactionSpec,
)
from repro.net.link import LinkConfig
from repro.storage.records import CommitRecord, SetFragment


def build(**kwargs):
    kwargs.setdefault("sites", ["A", "B", "C"])
    kwargs.setdefault("txn_timeout", 10.0)
    kwargs.setdefault("retransmit_period", 2.0)
    kwargs.setdefault("link", LinkConfig(base_delay=1.0))
    system = DvPSystem(SystemConfig(seed=6, **kwargs))
    system.add_item("x", CounterDomain(), total=90)
    return system


class TestCrash:
    def test_crash_clears_volatile_state(self):
        system = build()
        site = system.sites["A"]
        site.locks.try_acquire_all("t", {"x"})
        site.clock.next()
        system.crash("A")
        assert not site.alive
        assert site.locks.is_free("x")
        assert site.clock.counter == 0
        assert site.fragments.timestamp("x") == 0

    def test_crash_preserves_stable_state(self):
        system = build()
        results = []
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 5),)),
                      results.append)
        system.run_for(1.0)
        system.crash("A")
        site = system.sites["A"]
        assert site.pages.read("x") == 25
        assert len(site.log) > 0

    def test_crash_kills_active_transactions_silently(self):
        system = build()
        results = []
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 80),)),
                      results.append)
        system.run_for(0.5)
        system.crash("A")
        system.run_for(100.0)
        assert results == []  # the client never hears anything

    def test_crash_idempotent(self):
        system = build()
        system.crash("A")
        system.crash("A")
        assert system.sites["A"].crash_count == 1


class TestRecovery:
    def test_recovery_restores_committed_values(self):
        system = build()
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 12),)))
        system.run_for(1.0)
        system.crash("A")
        report = system.recover("A")
        assert system.sites["A"].fragments.value("x") == 18
        assert report.messages_needed == 0

    def test_redo_is_idempotent_via_page_lsn(self):
        system = build()
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 12),)))
        system.run_for(1.0)
        system.crash("A")
        report = system.recover("A")
        # Pages were written before the crash; redo must skip them.
        assert report.redo_applied == 0
        assert report.redo_skipped > 0

    def test_committed_but_unapplied_action_redone(self):
        # Simulate a crash BETWEEN the log force and the page write:
        # append a commit record manually, crash, recover.
        system = build()
        site = system.sites["A"]
        ts = site.clock.next()
        site.log.append(CommitRecord("manual",
                                     (SetFragment("x", 3, ts=ts),)))
        system.crash("A")
        report = system.recover("A")
        assert report.redo_applied == 1
        assert site.fragments.value("x") == 3

    def test_fragment_timestamps_rebuilt_from_log(self):
        system = build()
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 1),)))
        system.run_for(1.0)
        stamp_before = system.sites["A"].fragments.timestamp("x")
        assert stamp_before > 0
        system.crash("A")
        system.recover("A")
        assert system.sites["A"].fragments.timestamp("x") == stamp_before

    def test_clock_bumped_past_logged_timestamps(self):
        system = build()
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 1),)))
        system.run_for(1.0)
        system.crash("A")
        system.recover("A")
        site = system.sites["A"]
        assert site.clock.next() > site.fragments.timestamp("x")

    def test_outgoing_vm_rebuilt_and_redelivered(self):
        system = build()
        # B honors a request from A, creating a Vm, then crashes before
        # the transfer can possibly be ACKed.
        results = []
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 40),)),
                      results.append)
        system.run_for(1.6)  # request honored at B; Vm in flight
        outstanding = [name for name in ("B", "C")
                       if system.sites[name].vm.unacked_count()]
        if not outstanding:
            pytest.skip("timing produced no in-flight Vm")
        victim = outstanding[0]
        system.crash(victim)
        report = system.recover(victim)
        assert report.vm_rebuilt >= 1
        system.run_for(300.0)
        system.auditor.assert_ok()

    def test_incoming_dedup_state_rebuilt(self):
        system = build()
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 50),)))
        system.run_for(60.0)
        accepted_before = {
            src: channel.cumulative_accepted
            for src, channel in system.sites["A"].vm.incoming.items()}
        if not any(accepted_before.values()):
            pytest.skip("no Vm was accepted at A")
        system.crash("A")
        system.recover("A")
        for src, value in accepted_before.items():
            assert system.sites["A"].vm.in_channel(src) \
                .cumulative_accepted == value
        # No double absorption on retransmissions.
        system.run_for(300.0)
        system.auditor.assert_ok()

    def test_recovery_uses_checkpoint(self):
        system = build(checkpoint_interval=2)
        for _ in range(6):
            system.submit("A", TransactionSpec(
                ops=(IncrementOp("x", 1),)))
            system.run_for(1.0)
        system.crash("A")
        report = system.recover("A")
        assert report.from_checkpoint
        assert report.scanned_records < len(system.sites["A"].log)
        assert system.sites["A"].fragments.value("x") == 36

    def test_checkpoint_clock_restore_round_trip(self):
        """Checkpoint → crash → recover must not regress the counter.

        The checkpoint stores the bare Lamport counter; the restore
        path must re-encode it as a timestamp before observe() decodes
        the counter back out (counter = ts // MAX_SITES). Regression
        guard for the field math: an unencoded observe(counter) would
        divide the counter by 2^16 and silently restore ~0.
        """
        system = build()
        site = system.sites["A"]
        # Drive the counter far past anything the redo scan will see,
        # so the checkpoint extra is the only thing that can restore it.
        for _ in range(500):
            site.clock.next()
        counter_before = site.clock.counter
        last_ts_before = site.clock.next()
        site.write_checkpoint()
        system.crash("A")
        assert site.clock.counter == 0
        system.recover("A")
        assert site.clock.counter >= counter_before
        # Fresh stamps stay ahead of every pre-crash stamp: Lamport
        # uniqueness survives the round trip.
        assert site.clock.next() > last_ts_before

    def test_derive_incoming_cumulative_matches_volatile(self):
        system = build()
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 50),)))
        system.run_for(60.0)
        site = system.sites["A"]
        derived = derive_incoming_cumulative(site)
        for src, value in derived.items():
            assert site.vm.in_channel(src).cumulative_accepted == value

    def test_recover_site_direct_call(self):
        system = build()
        report = recover_site(system.sites["A"])
        assert report.site == "A"
        assert report.scanned_records == 0


class TestLoneSurvivor:
    def test_survivor_processes_after_total_failure(self):
        system = build()
        system.submit("B", TransactionSpec(ops=(DecrementOp("x", 5),)))
        system.run_for(2.0)
        for name in ("A", "B", "C"):
            system.crash(name)
        system.run_for(1.0)
        report = system.recover("B")
        assert report.messages_needed == 0
        results = []
        system.submit("B", TransactionSpec(ops=(IncrementOp("x", 3),)),
                      results.append)
        system.run_for(5.0)
        assert results and results[0].committed

    def test_stale_ack_after_recovery_does_not_fabricate_channel(self):
        """Regression for VmManager.on_ack fabricating channels.

        Schedule: A crashes and recovers (the incarnation churn that
        produces stale acks in the wild), then a stale duplicate ack
        from C — a site recovered-A has never sent a Vm to — arrives.
        Pre-fix, on_ack fabricated an OutgoingChannel for C with
        cumulative_acked=7 and next_seq=1, so when A later granted
        value toward C and the first transmission was lost, the entry
        looked already-acked, the retransmission timer never covered
        it, and the value vanished (conservation audit fails).
        """
        from repro.core.messages import VmAck

        system = build()
        system.crash("A")
        system.run_for(1.0)
        system.recover("A")
        site_a = system.sites["A"]
        assert "C" not in site_a.vm.outgoing
        # The stale duplicate from a previous life of the system.
        system.network.send("C", "A", VmAck(src="C", cumulative=7, ts=1))
        system.run_for(2.0)
        assert "C" not in site_a.vm.outgoing, \
            "stray ack must not fabricate an outgoing channel"
        # Now a real grant A->C whose first transmission is lost.
        system.network.inject_link_fault(
            "A", "C", LinkConfig(loss_probability=1.0))
        results = []
        system.submit("C", TransactionSpec(ops=(DecrementOp("x", 40),)),
                      results.append)
        system.run_for(3.0)  # request lands at A; its Vm reply is lost
        system.network.clear_link_fault("A", "C")
        system.run_for(60.0)  # retransmission must deliver the value
        channel = site_a.vm.outgoing.get("C")
        if channel is not None:
            assert not channel.unacked(), \
                "retransmission never recovered the lost grant"
        assert results and results[0].committed
        system.auditor.assert_ok()

    def test_stale_clock_is_temporary(self):
        # After a crash the recovered clock may trail other sites; any
        # incoming message bumps it (Section 7).
        system = build()
        for _ in range(5):
            system.submit("B", TransactionSpec(
                ops=(IncrementOp("x", 1),)))
        system.run_for(2.0)
        system.crash("A")
        system.recover("A")
        # B's activity then reaches A via a request honor.
        system.submit("B", TransactionSpec(ops=(DecrementOp("x", 60),)))
        system.run_for(60.0)
        assert system.sites["A"].clock.counter > 0
