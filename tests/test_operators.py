"""Unit tests for partitionable operators."""

from collections import Counter

import pytest

from repro.core.domain import CounterDomain, DomainError, TokenSetDomain
from repro.core.operators import (
    BoundedDecrement,
    Increment,
    SetToZero,
    commute,
)

domain = CounterDomain()


class TestIncrement:
    def test_always_effective(self):
        application = Increment(5).apply(domain, 0)
        assert application.effective
        assert application.value == 5

    def test_delta(self):
        assert Increment(5).delta(domain) == (+1, 5)

    def test_validates_amount(self):
        with pytest.raises(DomainError):
            Increment(-1).apply(domain, 0)

    def test_token_increment(self):
        tokens = TokenSetDomain()
        application = Increment(Counter({"a": 2})).apply(
            tokens, Counter({"a": 1}))
        assert application.value == Counter({"a": 3})


class TestBoundedDecrement:
    def test_effective_when_covered(self):
        application = BoundedDecrement(3).apply(domain, 5)
        assert application.effective
        assert application.value == 2

    def test_exact_drain(self):
        application = BoundedDecrement(5).apply(domain, 5)
        assert application.effective
        assert application.value == 0

    def test_ineffective_below_zero(self):
        application = BoundedDecrement(6).apply(domain, 5)
        assert not application.effective
        assert application.value == 5  # unchanged: a no-operation

    def test_delta(self):
        assert BoundedDecrement(3).delta(domain) == (-1, 3)

    def test_token_decrement_requires_exact_tokens(self):
        tokens = TokenSetDomain()
        application = BoundedDecrement(Counter({"a": 1})).apply(
            tokens, Counter({"b": 5}))
        assert not application.effective


class TestSetToZero:
    def test_drains_fragment(self):
        application = SetToZero().apply(domain, 42)
        assert application.effective
        assert application.value == 0

    def test_no_delta_defined(self):
        with pytest.raises(NotImplementedError):
            SetToZero().delta(domain)


class TestCommutation:
    def test_increments_commute(self):
        assert commute(domain, Increment(3), Increment(4), 10)

    def test_increment_and_effective_decrement_commute(self):
        assert commute(domain, Increment(3), BoundedDecrement(2), 10)

    def test_effective_decrements_commute(self):
        assert commute(domain, BoundedDecrement(1), BoundedDecrement(2), 10)

    def test_boundary_decrements_may_not_commute_on_one_fragment(self):
        # g = -4 effective, then h = -3 ineffective (1 < 3) vs
        # h = -3 effective, then g = -4 ineffective (2 < 4):
        # results 1 vs 2. This is exactly why the paper requires
        # *effective* application to SEPARATE portions, not the same
        # fragment.
        assert not commute(domain, BoundedDecrement(4),
                           BoundedDecrement(3), 5)

    def test_separate_fragments_always_commute(self):
        # Applied to separate portions of the multiset, order cannot
        # matter: each operator touches its own fragment.
        fragments = [5, 5]
        g, h = BoundedDecrement(4), BoundedDecrement(3)
        one = [g.apply(domain, fragments[0]).value,
               h.apply(domain, fragments[1]).value]
        other = [g.apply(domain, fragments[0]).value,
                 h.apply(domain, fragments[1]).value]
        assert domain.pi(one) == domain.pi(other)
