"""Chaos coverage for elastic topology: the three oracles must hold
across site joins, decommissions, and replica reshards — migration
ships are ordinary transfer-mode Vm, so they run *inside* the audited
envelope — and the oracles must still convict when the planted
conservation bug rides exclusively on migration traffic."""

import glob
import io
import os

import pytest

from repro.chaos import (
    AddSite,
    ChaosConfig,
    CrashSite,
    FaultPlan,
    HealNet,
    LinkFaultWindow,
    PartitionNet,
    RecoverSite,
    RemoveSite,
    ReproArtifact,
    Reshard,
    explore,
    reshard_grammar,
    run_chaos,
)
from repro.cli import build_parser
from repro.core import fragments
from repro.harness.chaos import config_from_args, explore_main

REPRO_DIR = os.path.join(os.path.dirname(__file__), "repros")

#: Placement-enabled scenario the elastic plans run against: consistent
#: hashing with two owners per item, so joins/leaves/reshards actually
#: move fragments instead of touching an every-site-owns-everything map.
CONFIG = ChaosConfig(partitioner="consistent", replicas=2)


def _ships(result) -> int:
    return result.system.sim.metrics.counter("migrate.ships").value


def _run_green(plan: FaultPlan, config: ChaosConfig = CONFIG, seed: int = 5):
    result = run_chaos(config, plan, seed)
    assert not result.failed, result.summary()
    assert not result.system.reshard_in_progress
    return result


class TestExploreElasticTopology:
    def test_reshard_grammar_budget_200_green(self):
        """The acceptance run: full budget with joins, decommissions,
        and reshards mixed into every standard fault family."""
        report = explore(CONFIG, budget=200, master_seed=7,
                         grammar=reshard_grammar())
        assert report.ok, report.describe()

    @pytest.mark.parametrize("seed", [19, 23])
    def test_other_seeds_green(self, seed):
        report = explore(CONFIG, budget=40, master_seed=seed,
                         grammar=reshard_grammar())
        assert report.ok, report.describe()

    def test_exploration_deterministic(self):
        """Joins and migrations draw no randomness of their own: the
        same (budget, seed, config, grammar) prints the same digest."""
        first = explore(CONFIG, budget=6, master_seed=11,
                        grammar=reshard_grammar())
        second = explore(CONFIG, budget=6, master_seed=11,
                         grammar=reshard_grammar())
        assert first.digest() == second.digest()

    def test_describe_names_the_partitioner(self):
        report = explore(CONFIG, budget=1, master_seed=3)
        assert "partitioner=consistent/2" in \
            report.describe().splitlines()[0]
        plain = explore(ChaosConfig(), budget=1, master_seed=3)
        assert "partitioner" not in plain.describe()

    def test_sampled_schedules_reach_migration(self):
        """The grammar must actually exercise the machinery it claims
        to: across a small budget, at least one sampled schedule ships
        migration Vm and bumps the directory epoch."""
        shipped = epochs = 0

        def watch(index, result):
            nonlocal shipped, epochs
            shipped += _ships(result)
            epochs += result.system.directory.epoch

        report = explore(CONFIG, budget=12, master_seed=7,
                         grammar=reshard_grammar(), on_run=watch)
        assert report.ok, report.describe()
        assert epochs > 0
        assert shipped > 0


class TestExplicitMigrationSchedules:
    """Hand-written worst-case interleavings the grammar only reaches
    by luck. Each must settle green under the default three oracles."""

    def test_crash_during_migration(self):
        """An owner fail-stops while a reshard drain is in flight; the
        controller must retry through recovery without double-applying."""
        result = _run_green(FaultPlan((
            Reshard(at=20.0, replicas=1),
            CrashSite(at=21.5, site="S1"),
            RecoverSite(at=45.0, site="S1"),
        )))
        assert _ships(result) > 0
        assert result.system.directory.epoch == 1

    def test_join_mid_partition(self):
        """A site joins while the network is split: migration ships
        toward it cannot land until the heal, then must drain cleanly."""
        result = _run_green(FaultPlan((
            PartitionNet(at=18.0, groups=(("S0", "S1"), ("S2", "S3"))),
            AddSite(at=20.0, site="E0"),
            HealNet(at=35.0),
        )))
        assert "E0" in result.system.sites
        assert result.system.directory.epoch == 1

    def test_duplicated_migration_vm(self):
        """A duplicating link window over the migration horizon: the
        receiver's exactly-once channel must absorb replayed ships."""
        result = _run_green(FaultPlan((
            LinkFaultWindow(at=18.0, src="S0", dst="S2", duration=25.0,
                            duplicate=0.6),
            LinkFaultWindow(at=18.0, src="S1", dst="S3", duration=25.0,
                            duplicate=0.6),
            Reshard(at=20.0, replicas=1),
        )))
        assert _ships(result) > 0

    def test_lost_migration_vm(self):
        """A lossy window eats first-attempt ships; the controller's
        retransmit tick must re-ship until cumulative acks cover them."""
        result = _run_green(FaultPlan((
            LinkFaultWindow(at=18.0, src="S0", dst="S2", duration=25.0,
                            loss=0.7),
            LinkFaultWindow(at=18.0, src="S2", dst="S0", duration=25.0,
                            loss=0.7),
            Reshard(at=20.0, replicas=1),
        )))
        assert _ships(result) > 0

    def test_decommission_under_crashes(self):
        """A leave drains the leaver's fragments while a bystander
        crashes and recovers."""
        result = _run_green(FaultPlan((
            RemoveSite(at=20.0, site="S3"),
            CrashSite(at=24.0, site="S0"),
            RecoverSite(at=42.0, site="S0"),
        )))
        assert result.system.sites["S3"].decommissioned
        assert result.system.directory.epoch == 1


class TestOraclesSeeMigrationTraffic:
    def test_auditor_convicts_leak_carried_only_by_migration(self):
        """With no transactions at all, the only stable writes in the
        run are migration ships — arm the write leak and the auditor
        must convict. This is the proof that placement migration runs
        inside the audited envelope rather than beside it."""
        quiet = ChaosConfig(partitioner="consistent", replicas=2, txns=0)
        plan = FaultPlan((Reshard(at=20.0, replicas=1),))
        fragments.set_test_leak("write")
        try:
            leaky = run_chaos(quiet, plan, seed=5)
        finally:
            fragments.set_test_leak(None)
        assert _ships(leaky) > 0
        assert "auditor" in leaky.failed_oracles, leaky.summary()

    def test_same_run_clean_without_the_leak(self):
        """Control: identical scenario, leak disarmed, all oracles ok —
        the conviction above is the leak, not the migration."""
        quiet = ChaosConfig(partitioner="consistent", replicas=2, txns=0)
        result = _run_green(FaultPlan((Reshard(at=20.0, replicas=1),)),
                            config=quiet)
        assert _ships(result) > 0


class TestPlumbing:
    def test_cli_args_reach_chaos_config(self):
        args = build_parser().parse_args(
            ["chaos", "--budget", "5", "--partitioner", "consistent",
             "--replicas", "2"])
        config = config_from_args(args)
        assert config.partitioner == "consistent"
        assert config.replicas == 2

    def test_cli_default_is_seed_placement(self):
        args = build_parser().parse_args(["chaos", "--budget", "5"])
        config = config_from_args(args)
        assert config.partitioner == "all"
        assert config.replicas is None

    def test_cli_rejects_unknown_partitioner(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["chaos", "--partitioner", "no-such-scheme"])

    def test_reshard_flag_selects_the_elastic_grammar(self):
        """End to end through explore_main: with --reshard and a seed
        whose first sample draws an elastic motif, the report line names
        the partitioner and the run stays green."""
        args = build_parser().parse_args(
            ["chaos", "--budget", "2", "--seed", "7",
             "--partitioner", "consistent", "--replicas", "2",
             "--reshard"])
        out = io.StringIO()
        assert explore_main(args, out=out) == 0
        text = out.getvalue()
        assert "partitioner=consistent/2" in text
        assert "failing: 0" in text

    def test_old_config_dicts_still_load(self):
        """Artifacts frozen before the placement axis predate the two
        new keys; from_dict must default them, not crash."""
        data = ChaosConfig().to_dict()
        del data["partitioner"]
        del data["replicas"]
        config = ChaosConfig.from_dict(data)
        assert config.partitioner == "all"
        assert config.replicas is None

    def test_round_trip_preserves_placement(self):
        config = ChaosConfig(partitioner="hash", replicas=3)
        assert ChaosConfig.from_dict(config.to_dict()) == config


class TestCommittedRepros:
    def test_partitioned_artifact_is_committed_and_reproduces(self):
        """A minimized dvp-chaos-repro/1 artifact whose failure rides
        on migration traffic must be committed and replay to the same
        oracle verdict."""
        found = []
        for path in sorted(glob.glob(os.path.join(REPRO_DIR, "*.json"))):
            artifact = ReproArtifact.load(path)
            if artifact.config.partitioner != "all":
                found.append((path, artifact))
        assert found, "no placement-enabled repro artifact is committed"
        for path, artifact in found:
            kinds = {action.kind for action in artifact.plan.actions}
            assert kinds & {"add-site", "remove-site", "reshard"}, path
            result = artifact.replay()  # arms the recorded injection
            assert result.failed_oracles == tuple(
                sorted(artifact.failures)), path
