"""Unit tests for the event queue and simulation kernel."""

import pytest

from repro.sim.events import EventQueue
from repro.sim.kernel import SimulationError, Simulator


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(3.0, lambda: order.append("c"))
        queue.push(1.0, lambda: order.append("a"))
        queue.push(2.0, lambda: order.append("b"))
        while (event := queue.pop()) is not None:
            event.action()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self):
        queue = EventQueue()
        events = [queue.push(5.0, lambda: None) for _ in range(10)]
        popped = [queue.pop() for _ in range(10)]
        assert popped == events

    def test_priority_breaks_time_ties(self):
        queue = EventQueue()
        low = queue.push(1.0, lambda: None, priority=5)
        high = queue.push(1.0, lambda: None, priority=1)
        assert queue.pop() is high
        assert queue.pop() is low

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        second = queue.push(2.0, lambda: None)
        first.cancel()
        assert queue.pop() is second
        assert queue.pop() is None

    def test_peek_time_ignores_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(4.0, lambda: None)
        assert queue.peek_time() == 1.0
        first.cancel()
        assert queue.peek_time() == 4.0

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None

    def test_len_counts_entries(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2

    def test_clear(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.clear()
        assert queue.pop() is None


class TestCompaction:
    """The heap drops cancelled corpses once they dominate a big heap;
    everything observable (len, peek, pop order) must be unaffected."""

    def make_big_queue(self, live_every=3):
        queue = EventQueue()
        events = [queue.push(float(index), lambda: None, label=str(index))
                  for index in range(3000)]
        survivors = []
        for index, event in enumerate(events):
            if index % live_every:
                event.cancel()
            else:
                survivors.append(event)
        return queue, survivors

    def test_compaction_triggers_on_majority_cancelled(self):
        queue, _ = self.make_big_queue()
        assert queue.compactions >= 1

    def test_small_heaps_never_compact(self):
        queue = EventQueue()
        events = [queue.push(float(index), lambda: None)
                  for index in range(100)]
        for event in events[:99]:
            event.cancel()
        assert queue.compactions == 0
        assert len(queue) == 1

    def test_len_survives_compaction(self):
        queue, survivors = self.make_big_queue()
        assert len(queue) == len(survivors)

    def test_peek_time_survives_compaction(self):
        queue, survivors = self.make_big_queue()
        assert queue.peek_time() == survivors[0].time

    def test_pop_order_survives_compaction(self):
        queue, survivors = self.make_big_queue()
        popped = []
        while (event := queue.pop()) is not None:
            popped.append(event)
        assert popped == survivors

    def test_cancel_after_compaction_still_skipped(self):
        queue, survivors = self.make_big_queue()
        survivors[0].cancel()
        assert queue.pop() is survivors[1]

    def test_double_cancel_counts_once(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        first.cancel()
        first.cancel()
        assert len(queue) == 1

    def test_cancel_popped_event_does_not_corrupt_count(self):
        """Cancelling an event after it was popped (e.g. a timer firing
        then being stopped) must not touch the queue's books."""
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert queue.pop() is first
        first.cancel()
        assert len(queue) == 1

    def test_compaction_in_live_simulation(self):
        """End to end: a run that cancels thousands of timers compacts
        without perturbing the surviving schedule."""
        sim = Simulator()
        hits = []
        cancelled = [sim.at(float(2000 + index), lambda: None)
                     for index in range(2000)]
        for t in (1.0, 2.0, 3.0):
            sim.at(t, lambda t=t: hits.append(t))
        for event in cancelled:
            event.cancel()
        sim.run_until(10.0)
        assert hits == [1.0, 2.0, 3.0]
        assert sim.pending == 0


class TestSimulator:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_after_advances_clock(self):
        sim = Simulator()
        times = []
        sim.after(5.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [5.0]
        assert sim.now == 5.0

    def test_at_schedules_absolute(self):
        sim = Simulator()
        hits = []
        sim.at(3.0, lambda: hits.append(sim.now))
        sim.run()
        assert hits == [3.0]

    def test_cannot_schedule_into_past(self):
        sim = Simulator()
        sim.after(2.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().after(-1.0, lambda: None)

    def test_run_until_stops_at_time(self):
        sim = Simulator()
        hits = []
        for t in (1.0, 2.0, 3.0, 4.0):
            sim.at(t, lambda t=t: hits.append(t))
        sim.run_until(2.5)
        assert hits == [1.0, 2.0]
        assert sim.now == 2.5

    def test_run_until_is_inclusive(self):
        sim = Simulator()
        hits = []
        sim.at(2.0, lambda: hits.append("x"))
        sim.run_until(2.0)
        assert hits == ["x"]

    def test_run_until_never_moves_clock_backwards(self):
        sim = Simulator()
        sim.after(10.0, lambda: None)
        sim.run()
        sim.run_until(5.0)
        assert sim.now == 10.0

    def test_events_can_schedule_events(self):
        sim = Simulator()
        hits = []

        def chain(depth: int) -> None:
            hits.append(sim.now)
            if depth:
                sim.after(1.0, lambda: chain(depth - 1))

        sim.after(1.0, lambda: chain(3))
        sim.run()
        assert hits == [1.0, 2.0, 3.0, 4.0]

    def test_max_steps_limits_run(self):
        sim = Simulator()
        for t in range(10):
            sim.at(float(t + 1), lambda: None)
        sim.run(max_steps=4)
        assert sim.steps == 4

    def test_max_steps_zero_runs_nothing(self):
        """Regression: run(max_steps=0) used to execute one event (the
        count was checked only after the first step)."""
        sim = Simulator()
        sim.at(1.0, lambda: None)
        sim.run(max_steps=0)
        assert sim.steps == 0
        assert sim.now == 0.0

    def test_step_returns_false_when_drained(self):
        assert Simulator().step() is False

    def test_trace_records_labels(self):
        sim = Simulator()
        sim.enable_trace()
        sim.after(1.0, lambda: None, label="hello")
        sim.run()
        assert sim.trace == [(1.0, "hello")]

    def test_trace_requires_enable(self):
        with pytest.raises(SimulationError):
            _ = Simulator().trace

    def test_pending_counts_queue(self):
        sim = Simulator()
        sim.after(1.0, lambda: None)
        sim.after(2.0, lambda: None)
        assert sim.pending == 2

    def test_defer_outside_event_returns_false(self):
        sim = Simulator()
        assert sim.defer_to_event_end(lambda: None) is False

    def test_defer_runs_after_action_same_instant(self):
        sim = Simulator()
        order = []

        def action():
            sim.defer_to_event_end(
                lambda: order.append(("deferred", sim.now)))
            order.append(("action", sim.now))

        sim.at(1.0, action)
        sim.at(1.0, lambda: order.append(("second", sim.now)))
        sim.run_until(1.0)
        # The deferred hook fires after its event's action but before
        # the next event pops — still at the same virtual instant.
        assert order == [("action", 1.0), ("deferred", 1.0),
                         ("second", 1.0)]

    def test_defer_works_in_step_loop(self):
        sim = Simulator()
        hits = []
        sim.at(1.0, lambda: sim.defer_to_event_end(
            lambda: hits.append(sim.now)))
        sim.run()
        assert hits == [1.0]

    def test_nested_defers_run_fifo(self):
        sim = Simulator()
        order = []

        def action():
            sim.defer_to_event_end(lambda: order.append("first"))
            sim.defer_to_event_end(nested)

        def nested():
            order.append("second")
            assert sim.defer_to_event_end(
                lambda: order.append("third")) is True

        sim.at(1.0, action)
        sim.run()
        assert order == ["first", "second", "third"]

    def test_failed_action_clears_deferred_hooks(self):
        sim = Simulator()
        hits = []

        def exploding():
            sim.defer_to_event_end(lambda: hits.append("stale"))
            raise RuntimeError("boom")

        sim.at(1.0, exploding)
        with pytest.raises(RuntimeError):
            sim.run()
        sim.at(2.0, lambda: hits.append("fresh"))
        sim.run()
        assert hits == ["fresh"]

    def test_deterministic_given_seed(self):
        def run(seed: int) -> list[float]:
            sim = Simulator(seed)
            draws = []
            for index in range(5):
                sim.after(sim.rng.stream("x").random() + index,
                          lambda: draws.append(sim.now))
            sim.run()
            return draws

        assert run(7) == run(7)
        assert run(7) != run(8)
