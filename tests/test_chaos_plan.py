"""FaultPlan DSL: serialization round-trips, validation, compiled
action semantics, and (seed, plan) replay determinism.

The determinism property is the tentpole contract: a chaos run is a
pure function of ``(seed, plan)``, checked via the simulator's SHA-256
trace fingerprint plus the run's own metrics summary. Seeded-random
sampling over the fault grammar gives property-style coverage without
an external property-testing dependency.
"""

from __future__ import annotations

import random

import pytest

from repro.chaos import (
    AddSite,
    ChaosConfig,
    CrashSite,
    FaultGrammar,
    FaultPlan,
    HealNet,
    LinkFaultWindow,
    PartitionNet,
    PlanError,
    RecoverSite,
    RemoveSite,
    Reshard,
    SkewTick,
    run_chaos,
    run_seed_for,
    sample_plan,
)
from repro.chaos.plan import ACTION_TYPES, action_from_dict
from repro.core.domain import CounterDomain
from repro.core.system import DvPSystem, SystemConfig

SAMPLE_ACTIONS = (
    CrashSite(at=3.0, site="S1"),
    RecoverSite(at=9.0, site="S1"),
    PartitionNet(at=4.0, groups=(("S0",), ("S1", "S2", "S3"))),
    HealNet(at=12.0),
    LinkFaultWindow(at=5.0, src="S0", dst="S2", duration=6.0,
                    loss=0.7, duplicate=0.3, jitter=4.0),
    LinkFaultWindow(at=2.0, src="S3", dst="S1", duration=3.0, down=True),
    SkewTick(at=7.5, site="S2"),
    AddSite(at=20.0, site="E0"),
    RemoveSite(at=30.0, site="S3"),
    Reshard(at=25.0, replicas=2),
)


class TestSerialization:
    def test_every_action_kind_round_trips(self):
        for action in SAMPLE_ACTIONS:
            assert action_from_dict(action.to_dict()) == action

    def test_plan_json_round_trip(self):
        plan = FaultPlan(SAMPLE_ACTIONS)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_kind_registry_is_complete(self):
        assert set(ACTION_TYPES) == {
            "crash", "recover", "partition", "heal", "link", "skew",
            "add-site", "remove-site", "reshard"}

    def test_unknown_kind_rejected(self):
        with pytest.raises(PlanError, match="unknown fault action"):
            action_from_dict({"kind": "meteor", "at": 1.0})

    def test_unknown_field_rejected(self):
        with pytest.raises(PlanError, match="unknown fields"):
            action_from_dict({"kind": "crash", "at": 1.0, "blast": 9})

    def test_non_list_json_rejected(self):
        with pytest.raises(PlanError, match="must be a list"):
            FaultPlan.from_json('{"kind": "crash"}')

    def test_sampled_plans_round_trip(self):
        config = ChaosConfig()
        grammar = FaultGrammar()
        for index in range(20):
            plan = sample_plan(99, index, config, grammar)
            assert FaultPlan.from_json(plan.to_json()) == plan


class TestValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(PlanError, match="at must be >= 0"):
            CrashSite(at=-1.0, site="S0")

    def test_empty_partition_rejected(self):
        with pytest.raises(PlanError, match="at least one group"):
            PartitionNet(at=1.0, groups=())

    def test_self_link_rejected(self):
        with pytest.raises(PlanError, match="must differ"):
            LinkFaultWindow(at=1.0, src="S0", dst="S0", duration=2.0)

    def test_nonpositive_window_rejected(self):
        with pytest.raises(PlanError, match="positive duration"):
            LinkFaultWindow(at=1.0, src="S0", dst="S1", duration=0.0)

    def test_unknown_site_rejected_at_validate(self):
        plan = FaultPlan((CrashSite(at=1.0, site="S9"),))
        with pytest.raises(PlanError, match="unknown sites"):
            plan.validate(["S0", "S1"])

    def test_without_drops_indices(self):
        plan = FaultPlan(SAMPLE_ACTIONS)
        smaller = plan.without({0, 3})
        assert len(smaller) == len(plan) - 2
        assert SAMPLE_ACTIONS[0] not in smaller.actions
        assert SAMPLE_ACTIONS[1] in smaller.actions


class TestCompiledSemantics:
    def _system(self) -> DvPSystem:
        system = DvPSystem(SystemConfig(sites=["S0", "S1", "S2"], seed=3))
        system.add_item("item0", CounterDomain(), total=30)
        return system

    def test_crash_and_recover_fire_at_time(self):
        system = self._system()
        FaultPlan((CrashSite(at=5.0, site="S1"),
                   RecoverSite(at=9.0, site="S1"))).compile(system)
        system.run_until(6.0)
        assert not system.sites["S1"].alive
        system.run_until(10.0)
        assert system.sites["S1"].alive

    def test_crash_is_noop_when_already_down(self):
        system = self._system()
        FaultPlan((CrashSite(at=2.0, site="S1"),
                   CrashSite(at=3.0, site="S1"))).compile(system)
        system.run_until(4.0)
        assert system.sites["S1"].crash_count == 1

    def test_partition_window(self):
        system = self._system()
        FaultPlan((PartitionNet(at=2.0, groups=(("S0",), ("S1", "S2"))),
                   HealNet(at=6.0))).compile(system)
        system.run_until(3.0)
        assert not system.network.reachable("S0", "S1")
        assert system.network.reachable("S1", "S2")
        system.run_until(7.0)
        assert system.network.reachable("S0", "S1")

    def test_link_window_opens_and_closes(self):
        system = self._system()
        FaultPlan((LinkFaultWindow(at=2.0, src="S0", dst="S1",
                                   duration=4.0, loss=1.0),)
                  ).compile(system)
        system.run_until(3.0)
        link = system.network.link("S0", "S1")
        assert link.active_config.loss_probability == 1.0
        system.run_until(7.0)
        assert link.active_config.loss_probability == \
            system.config.link.loss_probability

    def test_down_window_severs_and_restores(self):
        system = self._system()
        FaultPlan((LinkFaultWindow(at=2.0, src="S0", dst="S1",
                                   duration=4.0, down=True),)
                  ).compile(system)
        system.run_until(3.0)
        assert not system.network.link("S0", "S1").up
        system.run_until(7.0)
        assert system.network.link("S0", "S1").up

    def test_compile_rejects_unknown_site(self):
        system = self._system()
        with pytest.raises(PlanError):
            FaultPlan((CrashSite(at=1.0, site="S9"),)).compile(system)


class TestReplayDeterminism:
    """Same (seed, plan) → identical trace fingerprint and metrics."""

    def test_empty_plan_replays_identically(self):
        config = ChaosConfig()
        first = run_chaos(config, FaultPlan(), seed=11)
        second = run_chaos(config, FaultPlan(), seed=11)
        assert first.fingerprint == second.fingerprint
        assert first.summary() == second.summary()
        assert not first.failed

    @pytest.mark.parametrize("index", range(8))
    def test_sampled_plans_replay_identically(self, index):
        config = ChaosConfig()
        plan = sample_plan(13, index, config)
        seed = run_seed_for(13, index)
        first = run_chaos(config, plan, seed)
        second = run_chaos(config, plan, seed)
        assert first.fingerprint == second.fingerprint
        assert first.summary() == second.summary()
        assert first.failures == second.failures

    def test_json_round_tripped_plan_replays_identically(self):
        config = ChaosConfig()
        plan = sample_plan(13, 3, config)
        clone = FaultPlan.from_json(plan.to_json())
        seed = run_seed_for(13, 3)
        assert run_chaos(config, plan, seed).fingerprint == \
            run_chaos(config, clone, seed).fingerprint

    def test_different_seed_changes_the_trace(self):
        config = ChaosConfig()
        plan = sample_plan(13, 0, config)
        assert run_chaos(config, plan, seed=1).fingerprint != \
            run_chaos(config, plan, seed=2).fingerprint

    def test_different_plan_changes_the_trace(self):
        config = ChaosConfig()
        base = run_chaos(config, FaultPlan(), seed=11)
        bumped = run_chaos(
            config, FaultPlan((CrashSite(at=20.0, site="S0"),)), seed=11)
        assert base.fingerprint != bumped.fingerprint

    def test_grammar_sampling_is_pure(self):
        config = ChaosConfig()
        grammar = FaultGrammar()
        for index in random.Random(5).sample(range(100), 10):
            assert sample_plan(21, index, config, grammar) == \
                sample_plan(21, index, config, grammar)
