"""Unit tests for the Virtual Message protocol engine.

Two VmManagers are wired through a controllable fake transport so every
failure mode (loss, duplication, reordering, refusal-to-accept) can be
scripted deterministically.
"""

from repro.core.messages import VmAck, VmTransfer
from repro.core.vm import VmManager
from repro.sim.kernel import Simulator


class Harness:
    """Two sites, A and B, with scriptable delivery."""

    def __init__(self, retransmit_period: float = 5.0) -> None:
        self.sim = Simulator(1)
        self.wire: list[tuple[str, str, object]] = []  # (src, dst, payload)
        self.accepted: dict[str, list] = {"A": [], "B": []}
        self.refuse: dict[str, bool] = {"A": False, "B": False}
        self.managers: dict[str, VmManager] = {}
        clock = {"t": 0}

        def ts() -> int:
            clock["t"] += 1
            return clock["t"]

        for name in ("A", "B"):
            def send(dst, payload, src=name):
                self.wire.append((src, dst, payload))

            def accept(entry, src, me=name):
                if self.refuse[me]:
                    return False
                self.accepted[me].append((src, entry))
                return True

            self.managers[name] = VmManager(
                name, self.sim, send=send, accept=accept, clock_ts=ts,
                retransmit_period=retransmit_period)

    def flush(self, drop=None) -> int:
        """Deliver queued wire messages (optionally dropping some)."""
        drop = drop or (lambda src, dst, payload: False)
        queued, self.wire = self.wire, []
        delivered = 0
        for src, dst, payload in queued:
            if drop(src, dst, payload):
                continue
            delivered += 1
            manager = self.managers[dst]
            if isinstance(payload, VmTransfer):
                manager.on_transfer(payload)
            elif isinstance(payload, VmAck):
                manager.on_ack(payload)
        return delivered

    def send_value(self, src: str, dst: str, item: str, amount: int,
                   transmit: bool = True):
        manager = self.managers[src]
        entry = manager.allocate_entry(dst, item, amount, "transfer", "t")
        manager.register_created([entry], transmit=transmit)
        return entry


class TestHappyPath:
    def test_value_delivered_and_acked(self):
        h = Harness()
        h.send_value("A", "B", "x", 5)
        h.flush()  # transfer A->B
        assert [entry.amount for _src, entry in h.accepted["B"]] == [5]
        h.flush()  # ack B->A
        assert h.managers["A"].out_channel("B").cumulative_acked == 1
        assert h.managers["A"].unacked_count() == 0

    def test_sequence_numbers_increase_per_destination(self):
        h = Harness()
        first = h.send_value("A", "B", "x", 1)
        second = h.send_value("A", "B", "x", 2)
        assert (first.channel_seq, second.channel_seq) == (1, 2)

    def test_channels_are_per_destination(self):
        h = Harness()
        to_b = h.send_value("A", "B", "x", 1)
        # A third party would have its own channel; reuse B's manager as
        # a stand-in destination name.
        to_c = h.managers["A"].allocate_entry("C", "x", 1, "transfer", "t")
        assert to_b.channel_seq == to_c.channel_seq == 1


class TestLossAndRetransmission:
    def test_lost_transfer_retransmitted_until_acked(self):
        h = Harness(retransmit_period=5.0)
        h.send_value("A", "B", "x", 5)
        h.flush(drop=lambda s, d, p: isinstance(p, VmTransfer))  # lost
        assert h.accepted["B"] == []
        h.sim.run_until(5.0)  # retransmission timer fires
        h.flush()
        assert len(h.accepted["B"]) == 1
        assert h.managers["A"].out_channel("B").retransmissions >= 1

    def test_lost_ack_causes_duplicate_which_is_discarded(self):
        h = Harness(retransmit_period=5.0)
        h.send_value("A", "B", "x", 5)
        h.flush(drop=lambda s, d, p: isinstance(p, VmAck))  # ack lost
        assert len(h.accepted["B"]) == 1
        h.sim.run_until(5.0)
        h.flush(drop=lambda s, d, p: isinstance(p, VmAck))
        # Duplicate discarded: still exactly one acceptance.
        assert len(h.accepted["B"]) == 1
        assert h.managers["B"].in_channel("A").duplicates_discarded == 1
        h.sim.run_until(10.0)
        h.flush()  # this time the (re-)ack gets through
        assert h.managers["A"].unacked_count() == 0

    def test_timer_stops_when_all_acked(self):
        h = Harness(retransmit_period=5.0)
        h.send_value("A", "B", "x", 5)
        h.flush()
        h.flush()
        h.sim.run_until(30.0)
        assert h.managers["A"].out_channel("B").retransmissions == 0


class TestOrdering:
    def test_out_of_order_buffered_until_gap_fills(self):
        h = Harness()
        first = h.send_value("A", "B", "x", 1, transmit=False)
        second = h.send_value("A", "B", "x", 2, transmit=False)
        manager = h.managers["A"]
        # Deliver second first: B must buffer it.
        h.managers["B"].on_transfer(VmTransfer("A", second, 0, 1))
        assert h.accepted["B"] == []
        h.managers["B"].on_transfer(VmTransfer("A", first, 0, 2))
        assert [entry.amount for _s, entry in h.accepted["B"]] == [1, 2]

    def test_cumulative_ack_covers_all_accepted(self):
        h = Harness()
        for amount in (1, 2, 3):
            h.send_value("A", "B", "x", amount)
        h.flush()
        assert h.managers["B"].in_channel("A").cumulative_accepted == 3
        h.flush()
        assert h.managers["A"].out_channel("B").cumulative_acked == 3

    def test_piggyback_ack_on_reverse_traffic(self):
        h = Harness()
        h.send_value("A", "B", "x", 5)
        h.flush(drop=lambda s, d, p: isinstance(p, VmAck))
        # B now sends its own value to A; the transfer carries the ack.
        h.send_value("B", "A", "y", 1)
        h.flush()
        assert h.managers["A"].out_channel("B").cumulative_acked == 1


class TestRefusalAndPoke:
    def test_locked_item_leaves_vm_pending(self):
        h = Harness()
        h.refuse["B"] = True
        h.send_value("A", "B", "x", 5)
        h.flush()
        assert h.accepted["B"] == []
        assert h.managers["B"].in_channel("A").pending

    def test_poke_retries_pending_head(self):
        h = Harness()
        h.refuse["B"] = True
        h.send_value("A", "B", "x", 5)
        h.flush()
        h.refuse["B"] = False
        h.managers["B"].poke()
        assert len(h.accepted["B"]) == 1

    def test_head_of_line_blocks_later_messages(self):
        h = Harness()
        h.refuse["B"] = True
        h.send_value("A", "B", "x", 1)
        h.flush()
        h.refuse["B"] = False
        h.send_value("A", "B", "x", 2)
        h.flush()
        # Seq 2 cannot be absorbed before seq 1; both land on the poke.
        assert [entry.amount for _s, entry in h.accepted["B"]] == [1, 2]

    def test_refused_head_not_consumed(self):
        h = Harness()
        h.refuse["B"] = True
        h.send_value("A", "B", "x", 5)
        h.flush()
        channel = h.managers["B"].in_channel("A")
        assert channel.cumulative_accepted == 0
        assert 1 in channel.pending


class TestOutstanding:
    def test_has_outstanding_tracks_item(self):
        h = Harness()
        h.send_value("A", "B", "x", 5)
        assert h.managers["A"].has_outstanding("x")
        assert not h.managers["A"].has_outstanding("y")
        h.flush()
        h.flush()
        assert not h.managers["A"].has_outstanding("x")

    def test_ack_progress_prunes_acked_entries(self):
        """Regression: acked entries must leave memory without anyone
        calling prune() by hand — pre-fix, OutgoingChannel.prune existed
        but had no caller, so every Vm ever sent stayed resident."""
        h = Harness()
        h.send_value("A", "B", "x", 5)
        h.flush()  # transfer delivered
        channel = h.managers["A"].out_channel("B")
        assert channel.entries  # unacked: must be retained
        h.flush()  # ack delivered — prune happens on ack progress
        assert channel.cumulative_acked == 1
        assert not channel.entries

    def test_long_channel_memory_stays_bounded(self):
        """Many acked sends must not accumulate entries (memory bound)."""
        h = Harness()
        for i in range(200):
            h.send_value("A", "B", "x", 1)
            h.flush()
            h.flush()
        channel = h.managers["A"].out_channel("B")
        assert channel.cumulative_acked == 200
        assert len(channel.entries) == 0

    def test_ack_for_unknown_channel_is_ignored(self):
        """Regression: a stray ack from a peer A never sent to must not
        fabricate an OutgoingChannel with cumulative_acked ahead of
        next_seq — pre-fix that made A's first real sends to that peer
        look already-acked, so the retransmission timer never covered
        them and a lost first transmission lost the value forever."""
        h = Harness(retransmit_period=5.0)
        manager = h.managers["A"]
        # Stale duplicate from an old incarnation of some peer C.
        manager.on_ack(VmAck(src="C", cumulative=7, ts=1))
        assert "C" not in manager.outgoing
        # Now A really sends to C; the first transmission is lost.
        entry = manager.allocate_entry("C", "x", 5, "transfer", "t")
        manager.register_created([entry])
        h.wire.clear()  # initial transmission lost
        assert manager.out_channel("C").unacked(), \
            "entry must still be outstanding (pre-fix: looked acked)"
        h.sim.run_until(5.0)  # retransmission timer must re-send it
        assert any(isinstance(p, VmTransfer) and d == "C"
                   for _s, d, p in h.wire)

    def test_instrumentation_times(self):
        h = Harness()
        h.send_value("A", "B", "x", 5)
        h.flush()
        assert ("B", 1) in h.managers["A"].created_times
        assert ("A", 1) in h.managers["B"].accept_times


class TestReentrancy:
    def test_accept_may_reenter_drain_without_double_absorb(self):
        h = Harness()
        manager_b = h.managers["B"]
        absorbed = []

        def accept(entry, src):
            absorbed.append(entry.channel_seq)
            manager_b.drain(src)  # re-entrant poke from inside accept
            return True

        manager_b._accept = accept
        for amount in (1, 2, 3):
            h.send_value("A", "B", "x", amount)
        h.flush()
        assert absorbed == [1, 2, 3]
