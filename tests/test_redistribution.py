"""Unit tests for the demand tracker and the rebalance policy registry."""

import pytest

from repro.core.redistribution import (
    REBALANCE_POLICIES,
    DemandTracker,
    DemandWeightedPolicy,
    PullPolicy,
    StaticRoundRobinPolicy,
    make_rebalance_policy,
)


class FakeSim:
    """DemandTracker only reads virtual time."""

    def __init__(self) -> None:
        self.now = 0.0


class TestDemandTracker:
    def test_scores_accumulate(self):
        tracker = DemandTracker(FakeSim())
        tracker.note_remote_demand("B", "x", 5)
        tracker.note_remote_demand("B", "x", 3)
        assert tracker.remote_demand("x", "B") == pytest.approx(8.0)
        assert tracker.remote_demand("x", "C") == 0.0
        assert tracker.remote_demand("y", "B") == 0.0

    def test_scores_decay_with_half_life(self):
        sim = FakeSim()
        tracker = DemandTracker(sim, half_life=10.0)
        tracker.note_shortfall("x", 8)
        assert tracker.local_pressure("x") == pytest.approx(8.0)
        sim.now = 10.0
        assert tracker.local_pressure("x") == pytest.approx(4.0)
        sim.now = 30.0
        assert tracker.local_pressure("x") == pytest.approx(1.0)

    def test_abort_adds_fixed_pressure(self):
        tracker = DemandTracker(FakeSim())
        tracker.note_abort("x")
        assert tracker.local_pressure("x") == pytest.approx(
            DemandTracker.ABORT_WEIGHT)

    def test_wealth_tracks_received_supply(self):
        tracker = DemandTracker(FakeSim())
        tracker.note_supply("A", "x", 20)
        tracker.note_supply("C", "x", 2)
        assert tracker.wealth("x", "A") > tracker.wealth("x", "C")

    def test_non_numeric_amounts_use_cardinality(self):
        tracker = DemandTracker(FakeSim())
        tracker.note_remote_demand("B", "s", {"a", "b", "c"})
        assert tracker.remote_demand("s", "B") == pytest.approx(3.0)
        tracker.note_remote_demand("B", "t", object())
        assert tracker.remote_demand("t", "B") == pytest.approx(1.0)

    def test_reset_clears_everything(self):
        tracker = DemandTracker(FakeSim())
        tracker.note_shortfall("x", 4)
        tracker.note_remote_demand("B", "x", 4)
        tracker.note_supply("B", "x", 4)
        tracker.reset()
        assert tracker.local_pressure("x") == 0.0
        assert tracker.remote_demand("x", "B") == 0.0
        assert tracker.wealth("x", "B") == 0.0

    def test_half_life_validated(self):
        with pytest.raises(ValueError):
            DemandTracker(FakeSim(), half_life=0.0)


class TestPolicies:
    def test_registry_and_factory(self):
        assert set(REBALANCE_POLICIES) == {"static-rr", "demand-weighted",
                                           "pull"}
        for name, cls in REBALANCE_POLICIES.items():
            policy = make_rebalance_policy(name)
            assert isinstance(policy, cls)
            assert policy.name == name
        with pytest.raises(ValueError):
            make_rebalance_policy("nope")

    def test_static_rr_rotates_only_on_shipment(self):
        policy = StaticRoundRobinPolicy()
        tracker = DemandTracker(FakeSim())
        candidates = ["B", "C", "D"]
        # Peeks are pure: repeated selection without a ship is stable.
        assert policy.push_target(tracker, "x", candidates) == "B"
        assert policy.push_target(tracker, "x", candidates) == "B"
        policy.on_shipped("B")
        assert policy.push_target(tracker, "x", candidates) == "C"
        policy.on_shipped("C")
        assert policy.push_target(tracker, "x", candidates) == "D"

    def test_demand_weighted_picks_strongest_demand(self):
        policy = DemandWeightedPolicy()
        tracker = DemandTracker(FakeSim())
        tracker.note_remote_demand("C", "x", 9)
        tracker.note_remote_demand("B", "x", 2)
        assert policy.push_target(tracker, "x", ["B", "C"]) == "C"
        # Only candidates count: demand from a filtered-out peer is moot.
        assert policy.push_target(tracker, "x", ["B"]) == "B"

    def test_demand_weighted_falls_back_to_rr(self):
        policy = DemandWeightedPolicy()
        tracker = DemandTracker(FakeSim())
        assert policy.push_target(tracker, "x", ["B", "C"]) == "B"
        policy.on_shipped("B")
        assert policy.push_target(tracker, "x", ["B", "C"]) == "C"

    def test_demand_weighted_tie_breaks_to_earliest(self):
        policy = DemandWeightedPolicy()
        tracker = DemandTracker(FakeSim())
        tracker.note_remote_demand("B", "x", 4)
        tracker.note_remote_demand("C", "x", 4)
        assert policy.push_target(tracker, "x", ["B", "C"]) == "B"

    def test_pull_never_pushes(self):
        policy = PullPolicy()
        tracker = DemandTracker(FakeSim())
        assert policy.pushes is False and policy.pulls is True
        assert policy.push_target(tracker, "x", ["B", "C"]) is None

    def test_pull_prefers_richest_peer(self):
        policy = PullPolicy()
        tracker = DemandTracker(FakeSim())
        tracker.note_supply("C", "x", 30)
        tracker.note_supply("B", "x", 1)
        assert policy.pull_source(tracker, "x", ["B", "C"]) == "C"

    def test_pull_probes_round_robin_without_evidence(self):
        policy = PullPolicy()
        tracker = DemandTracker(FakeSim())
        assert policy.pull_source(tracker, "x", ["B", "C"]) == "B"
        policy.on_pulled("B")
        assert policy.pull_source(tracker, "x", ["B", "C"]) == "C"

    def test_empty_candidates(self):
        tracker = DemandTracker(FakeSim())
        for name in REBALANCE_POLICIES:
            policy = make_rebalance_policy(name)
            assert policy.push_target(tracker, "x", []) is None
            assert policy.pull_source(tracker, "x", []) is None
