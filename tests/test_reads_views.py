"""Unit coverage for the bounded-staleness read tier (docs/READS.md):
the view store's conservation totals, the per-site cache's admission
rules, the certificate-first O(1) commit path, the view-aware router,
the app façades' estimate calls through the serving front-end, and the
streaming window aggregator the 10^5-site runs rely on.
"""

import random

import pytest

from repro.apps.airline import ReservationSystem
from repro.apps.bank import Bank
from repro.apps.inventory import InventoryControl
from repro.core.domain import CounterDomain
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    ReadViewOp,
    TransactionSpec,
)
from repro.metrics.windows import (
    ServeSample,
    StreamingWindowStats,
    window_stats,
)
from repro.net.link import LinkConfig
from repro.reads import ViewConfig, ViewEntry
from repro.serving import ServingConfig, ServingFrontend
from repro.serving.router import DepthBoard, ViewAwareRouter, make_router


def build(views=ViewConfig(refresh_period=2.0), sites=("A", "B", "C"),
          total=90, **config_kwargs):
    config_kwargs.setdefault("txn_timeout", 10.0)
    config_kwargs.setdefault("link", LinkConfig(base_delay=1.0))
    system = DvPSystem(SystemConfig(sites=list(sites), seed=2,
                                    views=views, **config_kwargs))
    system.add_item("x", CounterDomain(), total=total)
    return system


def warm(system, until=6.0):
    """Run past one refresh round + delivery so every cache is hot."""
    system.run_until(until)


def run_one(system, site, spec):
    results = []
    system.submit(site, spec, results.append)
    system.run_for(system.config.txn_timeout + 200.0)
    assert results, "transaction never decided"
    return results[0]


class TestViewStoreTotals:
    def test_totals_track_the_logical_value(self):
        """Σ fragments + Σ live Vm, folded incrementally, equals the
        brute-force fragment sum at quiescence — after commits have
        moved value around."""
        system = build()
        run_one(system, "A", TransactionSpec(ops=(DecrementOp("x", 50),)))
        run_one(system, "B", TransactionSpec(ops=(IncrementOp("x", 7),)))
        assert system.views.store.total("x") == \
            sum(system.fragment_values("x").values()) == 47

    def test_views_off_means_no_service(self):
        system = build(views=None)
        assert system.views is None
        assert all(site.views is None for site in system.sites.values())


class TestCacheAdmission:
    def _cache(self, system):
        warm(system)
        return system.sites["A"].views

    def test_cold_cache_misses(self):
        system = build()
        cache = system.sites["A"].views  # before any refresh round
        assert cache.serve("x", bound=100.0) is None

    def test_warm_cache_serves_with_certificate(self):
        system = build()
        cache = self._cache(system)
        cert = cache.serve("x", bound=100.0)
        assert cert is not None
        assert cert.value == 90
        assert 0 <= cert.staleness <= 100.0
        assert cert.bound == 100.0

    def test_bound_tighter_than_staleness_misses(self):
        system = build()
        cache = self._cache(system)
        entry = cache.entries["x"]
        cache.entries["x"] = ViewEntry(item="x", value=entry.value,
                                       as_of=system.sim.now - 3.0,
                                       epoch=entry.epoch)
        assert cache.serve("x", bound=1.0) is None
        # A bound miss is the reader's problem, not the entry's: a
        # looser bound must still be servable from the same entry.
        assert "x" in cache.entries
        cert = cache.serve("x", bound=3.5)
        assert cert is not None
        assert cert.staleness == 3.0

    def test_ttl_expiry_evicts(self):
        system = build()       # resolved_ttl = 2 * refresh = 4
        cache = self._cache(system)
        system.views.stop()    # no more refreshes
        system.run_until(system.sim.now + 50.0)
        assert cache.serve("x", bound=None) is None
        assert "x" not in cache.entries

    def test_stale_epoch_evicts(self):
        system = build()
        cache = self._cache(system)
        entry = cache.entries["x"]
        cache.entries["x"] = ViewEntry(item="x", value=entry.value,
                                       as_of=entry.as_of,
                                       epoch=entry.epoch - 1)
        assert cache.serve("x", bound=None) is None
        assert "x" not in cache.entries

    def test_store_keeps_the_freshest_entry(self):
        system = build()
        cache = self._cache(system)
        newest = cache.entries["x"]
        older = ViewEntry(item="x", value=0, as_of=newest.as_of - 1.0,
                          epoch=newest.epoch)
        cache.store(older)
        assert cache.entries["x"] is newest


class TestCertificateFastPath:
    def test_served_read_is_message_free(self):
        system = build()
        warm(system)
        result = run_one(system, "A", TransactionSpec(
            ops=(ReadViewOp("x", bound=100.0),)))
        assert result.committed
        assert result.requests_sent == 0
        assert result.view_fallbacks == ()
        assert result.view_reads["x"].value == 90
        assert result.read_values["x"] == 90

    def test_served_read_ignores_a_frozen_fragment(self):
        """The poisoning regression: a concurrent fan-out read's
        freeze holds the local fragment lock, but a certificate-served
        read never touches the fragment — it must commit anyway."""
        system = build()
        warm(system)
        site = system.sites["A"]
        assert site.locks.try_acquire_all("rds:freeze", {"x"})
        result = run_one(system, "A", TransactionSpec(
            ops=(ReadViewOp("x", bound=100.0),)))
        assert result.committed
        assert result.requests_sent == 0
        # And the fast path left the foreign lock alone.
        assert site.locks.holder("x") == "rds:freeze"

    def test_miss_falls_back_to_fanout_and_fills_through(self):
        system = build()
        warm(system)
        cache = system.sites["A"].views
        cache.clear()
        result = run_one(system, "A", TransactionSpec(
            ops=(ReadViewOp("x", bound=100.0),)))
        assert result.committed
        assert result.view_fallbacks == ("x",)
        assert result.requests_sent > 0
        assert result.read_values["x"] == 90
        # Read-through repair: the fallback warmed the cache again.
        assert "x" in cache.entries

    def test_views_disabled_escalates_to_fanout(self):
        system = build(views=None)
        result = run_one(system, "A", TransactionSpec(
            ops=(ReadViewOp("x", bound=100.0),)))
        assert result.committed
        assert result.view_fallbacks == ("x",)
        assert result.read_values["x"] == 90

    def test_mixed_spec_takes_the_classic_path(self):
        """A view read riding with a write still locks and commits
        through the ordinary protocol — certificates included."""
        system = build()
        system.add_item("y", CounterDomain(), total=9)
        warm(system)
        result = run_one(system, "A", TransactionSpec(
            ops=(ReadViewOp("x", bound=100.0), DecrementOp("y", 1))))
        assert result.committed
        assert result.view_reads["x"].value == 90
        assert sum(system.fragment_values("y").values()) == 8


class TestViewAwareRouter:
    def _router(self, system, capable=lambda site: True):
        board = DepthBoard({})
        return make_router("view-aware", system.sim,
                           list(system.sites), board,
                           directory=system.directory,
                           view_capable=capable)

    def test_pure_view_spec_stays_at_origin(self):
        system = build()
        router = self._router(system)
        spec = TransactionSpec(ops=(ReadViewOp("x", bound=5.0),))
        assert router.route("B", spec) == "B"
        assert router.kept_local == 1

    def test_incapable_origin_falls_back_to_locality(self):
        system = build()
        router = self._router(system, capable=lambda site: False)
        spec = TransactionSpec(ops=(ReadViewOp("x", bound=5.0),))
        target = router.route("B", spec)
        assert target in system.sites
        assert router.kept_local == 0

    def test_mixed_spec_falls_back_to_locality(self):
        system = build()
        router = self._router(system)
        spec = TransactionSpec(ops=(ReadViewOp("x", bound=5.0),
                                    DecrementOp("y", 1)))
        router.route("B", spec)
        assert router.kept_local == 0

    def test_registered_name(self):
        assert ViewAwareRouter.name == "view-aware"


class TestFacadeEstimates:
    def _frontend(self, system):
        return ServingFrontend(system, ServingConfig(router="view-aware"))

    def test_bank_estimate_via_frontend(self):
        system = DvPSystem(SystemConfig(
            sites=["A", "B"], seed=3, txn_timeout=10.0,
            link=LinkConfig(base_delay=1.0),
            views=ViewConfig(refresh_period=2.0)))
        frontend = self._frontend(system)
        bank = Bank(system, via=frontend)
        bank.open_account("acct", {"A": 60, "B": 40})
        frontend.start()
        warm(system)
        results = []
        bank.estimate_balance("B", "acct", bound=50.0,
                              on_done=results.append)
        system.run_for(30.0)
        assert results and results[0].committed
        assert results[0].read_values["acct"] == 100
        assert results[0].view_reads["acct"].staleness <= 50.0

    def test_airline_and_inventory_estimates(self):
        system = DvPSystem(SystemConfig(
            sites=["A", "B"], seed=3, txn_timeout=10.0,
            link=LinkConfig(base_delay=1.0),
            views=ViewConfig(refresh_period=2.0)))
        frontend = self._frontend(system)
        airline = ReservationSystem(system, via=frontend)
        airline.add_flight("fl1", 50)
        inventory = InventoryControl(system, via=frontend)
        inventory.add_sku("sku1", 12, stocking={"A": 5, "B": 7})
        frontend.start()
        warm(system)
        seats, stock = [], []
        airline.seats_estimate("A", "fl1", bound=50.0,
                               on_done=seats.append)
        inventory.stock_estimate("B", "sku1", bound=50.0,
                                 on_done=stock.append)
        system.run_for(30.0)
        assert seats and seats[0].committed
        assert seats[0].read_values["fl1"] == 50
        assert stock and stock[0].committed
        assert stock[0].read_values["sku1"] == 12


class TestStreamingWindows:
    def _samples(self, count=400, seed=5):
        rng = random.Random(seed)
        samples, sheds = [], []
        for index in range(count):
            arrived = rng.uniform(0.0, 120.0)  # some past the end
            dispatched = arrived + rng.uniform(0.0, 3.0)
            finished = dispatched + rng.uniform(0.0, 8.0)
            samples.append(ServeSample(
                site=f"S{index % 4}", arrived_at=arrived,
                dispatched_at=dispatched, finished_at=finished,
                committed=rng.random() < 0.8))
            if rng.random() < 0.2:
                sheds.append(rng.uniform(0.0, 120.0))
        return samples, sheds

    def test_equivalent_to_window_stats(self):
        samples, sheds = self._samples()
        start, end, width = 0.0, 100.0, 10.0
        streaming = StreamingWindowStats(start, end, width)
        for sample in samples:
            streaming.add(sample)
        for at in sheds:
            streaming.add_shed(at)
        assert streaming.stats() == window_stats(samples, sheds,
                                                 start, end, width)

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            StreamingWindowStats(0.0, 10.0, 0.0)

    def test_frontend_sinks_replace_retention(self):
        """retain_samples=False: the lists stay empty, the sinks see
        every decision, and the aggregate matches a retained twin."""
        def serve(retain, sink=None):
            system = DvPSystem(SystemConfig(
                sites=["A", "B"], seed=4, txn_timeout=10.0,
                link=LinkConfig(base_delay=1.0)))
            system.add_item("x", CounterDomain(), total=100)
            frontend = ServingFrontend(system, ServingConfig(
                router="random", retain_samples=retain))
            if sink is not None:
                frontend.on_sample = sink
            frontend.start()
            for at in range(1, 11):
                system.sim.at(float(at), lambda s=system, f=frontend:
                              f.submit("A", TransactionSpec(
                                  ops=(DecrementOp("x", 1),))))
            system.run_until(60.0)
            return frontend

        retained = serve(retain=True)
        streamed: list[ServeSample] = []
        frontend = serve(retain=False, sink=streamed.append)
        assert frontend.samples == []
        assert len(streamed) == len(retained.samples) == 10
        assert sorted(s.latency for s in streamed) == \
            sorted(s.latency for s in retained.samples)
