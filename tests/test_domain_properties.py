"""Property-based tests (hypothesis) for the domain algebra.

These pin the formal requirements of Section 4.1: Π must be computable
by folding an associative/commutative combine, splits must conserve
value, and partitionable operators must commute with Π on any grouping
of the fragment multiset.
"""

from collections import Counter

from hypothesis import given, strategies as st

from repro.core.domain import (
    CounterDomain,
    TokenSetDomain,
    check_partitionable,
)
from repro.core.operators import BoundedDecrement, Increment

counters = st.integers(min_value=0, max_value=10_000)
fragments_lists = st.lists(counters, min_size=1, max_size=12)

tokens = st.dictionaries(st.sampled_from("abcdef"),
                         st.integers(min_value=0, max_value=20),
                         max_size=6).map(lambda d: +Counter(d))


class TestCounterProperties:
    domain = CounterDomain()

    @given(counters, counters)
    def test_split_conserves_and_bounds(self, value, want):
        granted, remainder = self.domain.split(value, want)
        assert granted + remainder == value
        assert 0 <= granted <= want
        assert remainder >= 0

    @given(counters, counters)
    def test_split_is_maximal(self, value, want):
        granted, _ = self.domain.split(value, want)
        assert granted == min(value, want)

    @given(fragments_lists)
    def test_pi_invariant_under_grouping(self, fragments):
        # Collapse any prefix/suffix grouping: Π must not change.
        groupings = []
        for cut in range(1, len(fragments)):
            groupings.append([fragments[:cut], fragments[cut:]])
        groupings.append([[value] for value in fragments])
        assert check_partitionable(self.domain, fragments, groupings)

    @given(counters, counters)
    def test_deficit_covers_coherence(self, value, need):
        deficit = self.domain.deficit(value, need)
        assert self.domain.covers(self.domain.combine(value, deficit),
                                  need)
        if self.domain.covers(value, need):
            assert deficit == 0

    @given(fragments_lists, counters)
    def test_increment_commutes_with_pi(self, fragments, amount):
        # f(Π(b)) == Π(b') with f applied to one fragment (Section 4.1).
        domain = self.domain
        operator = Increment(amount)
        direct = operator.apply(domain, domain.pi(fragments)).value
        modified = list(fragments)
        modified[0] = operator.apply(domain, modified[0]).value
        assert domain.pi(modified) == direct

    @given(fragments_lists, counters)
    def test_effective_decrement_commutes_with_pi(self, fragments, amount):
        domain = self.domain
        operator = BoundedDecrement(amount)
        application = operator.apply(domain, fragments[0])
        if not application.effective:
            return  # ineffective applications are no-ops by definition
        modified = [application.value] + list(fragments[1:])
        assert domain.pi(modified) == domain.pi(fragments) - amount

    @given(fragments_lists)
    def test_redistribution_preserves_pi(self, fragments):
        # Moving value between two fragments is a redistribution
        # operator h: Π(h(b)) == Π(b).
        domain = self.domain
        total = domain.pi(fragments)
        moved, remainder = domain.split(fragments[0], fragments[0] // 2)
        redistributed = [remainder] + list(fragments[1:])
        redistributed[-1] = domain.combine(redistributed[-1], moved)
        assert domain.pi(redistributed) == total


class TestTokenProperties:
    domain = TokenSetDomain()

    @given(tokens, tokens)
    def test_split_conserves(self, value, want):
        granted, remainder = self.domain.split(value, want)
        assert self.domain.combine(granted, remainder) == value
        assert self.domain.covers(want, granted)

    @given(tokens, tokens)
    def test_combine_commutative(self, a, b):
        assert self.domain.combine(a, b) == self.domain.combine(b, a)

    @given(tokens, tokens, tokens)
    def test_combine_associative(self, a, b, c):
        left = self.domain.combine(self.domain.combine(a, b), c)
        right = self.domain.combine(a, self.domain.combine(b, c))
        assert left == right

    @given(tokens, tokens)
    def test_deficit_covers_coherence(self, value, need):
        deficit = self.domain.deficit(value, need)
        assert self.domain.covers(self.domain.combine(value, deficit),
                                  need)

    @given(st.lists(tokens, min_size=1, max_size=6))
    def test_pi_invariant_under_grouping(self, fragments):
        groupings = [[[fragment] for fragment in fragments],
                     [fragments]]
        assert check_partitionable(self.domain, fragments, groupings)
