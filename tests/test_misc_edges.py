"""Remaining edge coverage: overlapping partition schedules, domain
corner cases, collector windows, table rendering, sim determinism."""

import pytest

from repro.core.domain import CounterDomain, MoneyDomain
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    ReadLocalOp,
    TransactionSpec,
)
from repro.net.link import LinkConfig
from repro.net.partitions import PartitionSchedule, PartitionScheduler


class TestOverlappingPartitions:
    def test_second_split_replaces_first(self):
        system = DvPSystem(SystemConfig(
            sites=["A", "B", "C", "D"],
            link=LinkConfig(base_delay=1.0)))
        system.add_item("x", CounterDomain(), total=40)
        schedule = PartitionSchedule()
        schedule.split_at(10.0, [["A"], ["B", "C", "D"]])
        schedule.split_at(20.0, [["A", "B"], ["C", "D"]])
        schedule.heal_at(30.0)
        PartitionScheduler(system.sim, system.network, schedule).install()
        system.run_until(15.0)
        assert not system.network.reachable("A", "B")
        system.run_until(25.0)
        assert system.network.reachable("A", "B")
        assert not system.network.reachable("B", "C")
        system.run_until(35.0)
        assert system.network.reachable("B", "C")


class TestReadLocalOp:
    def test_reads_fragment_without_network(self):
        system = DvPSystem(SystemConfig(
            sites=["A", "B"], link=LinkConfig(base_delay=1.0)))
        system.add_item("x", CounterDomain(), split={"A": 7, "B": 3})
        results = []
        system.submit("A", TransactionSpec(ops=(ReadLocalOp("x"),)),
                      results.append)
        system.run_for(1.0)
        assert results and results[0].committed
        assert results[0].read_values["x"] == 7
        assert results[0].requests_sent == 0
        assert results[0].latency == 0.0

    def test_local_read_composable_with_update(self):
        system = DvPSystem(SystemConfig(
            sites=["A", "B"], link=LinkConfig(base_delay=1.0)))
        system.add_item("x", CounterDomain(), split={"A": 7, "B": 3})
        results = []
        system.submit("A", TransactionSpec(
            ops=(ReadLocalOp("x"), DecrementOp("x", 2))), results.append)
        system.run_for(1.0)
        assert results and results[0].committed
        # The read sees the pre-decrement fragment (op order).
        assert results[0].read_values["x"] == 7
        assert system.fragment_values("x")["A"] == 5


class TestMoneySemantics:
    def test_cents_arithmetic_through_system(self):
        system = DvPSystem(SystemConfig(
            sites=["A", "B"], txn_timeout=10.0,
            link=LinkConfig(base_delay=1.0)))
        system.add_item("acct", MoneyDomain(), split={"A": 150, "B": 50})
        results = []
        system.submit("A", TransactionSpec(
            ops=(DecrementOp("acct", 175),)), results.append)
        system.run_for(30.0)
        assert results and results[0].committed
        assert system.auditor.expected("acct") == 25
        system.auditor.assert_ok()


class TestDeterminismAcrossFeatures:
    def test_identical_runs_with_all_knobs(self):
        def run():
            system = DvPSystem(SystemConfig(
                sites=["A", "B", "C"], seed=77, txn_timeout=8.0,
                request_retries=1, vm_window=2, checkpoint_interval=5,
                retransmit_period=2.0,
                link=LinkConfig(base_delay=1.0, jitter=1.0,
                                loss_probability=0.3,
                                duplicate_probability=0.2)))
            system.add_item("x", CounterDomain(), total=30)
            results = []
            for index, site in enumerate(("A", "B", "C", "A", "B")):
                amount = 8 + index
                system.sim.at(index * 4.0 + 0.5, lambda s=site, a=amount:
                              system.submit(s, TransactionSpec(
                                  ops=(DecrementOp("x", a),)),
                                  results.append))
                system.sim.at(index * 4.0 + 2.0, lambda s=site:
                              system.submit(s, TransactionSpec(
                                  ops=(IncrementOp("x", 3),)),
                                  results.append))
            system.run_for(200.0)
            system.run_for(400.0)
            system.auditor.assert_ok()
            return [(r.txn_id, r.outcome.value, r.finished_at)
                    for r in results]

        assert run() == run()


class TestSingleSiteSystem:
    def test_degenerate_single_site_is_a_plain_database(self):
        # "A traditional database without replicated data can be
        # described trivially as a special case of this approach."
        system = DvPSystem(SystemConfig(sites=["only"], txn_timeout=5.0))
        system.add_item("x", CounterDomain(), total=10)
        results = []
        for amount, expect in ((4, True), (7, False), (6, True)):
            system.submit("only", TransactionSpec(
                ops=(DecrementOp("x", amount),)), results.append)
            system.run_for(10.0)
        assert [r.committed for r in results] == [True, False, True]
        assert system.auditor.expected("x") == 0
        system.auditor.assert_ok()
