"""Tests for the scenario runner used by the experiment harness."""

from repro.core.domain import CounterDomain
from repro.core.system import SystemConfig
from repro.harness.runner import (
    ScenarioResult,
    counter_items,
    run_dvp_scenario,
)
from repro.net.link import LinkConfig
from repro.net.partitions import PartitionSchedule
from repro.workloads.airline import AirlineWorkload
from repro.workloads.base import OpMix, WorkloadConfig


def make_inputs(**overrides):
    sites = ["A", "B", "C", "D"]
    system_config = SystemConfig(
        sites=sites, seed=overrides.pop("seed", 1), txn_timeout=10.0,
        link=LinkConfig(base_delay=1.0,
                        loss_probability=overrides.pop("loss", 0.0)))
    workload_config = WorkloadConfig(
        arrival_rate=0.1, duration=overrides.pop("duration", 80.0),
        mix=OpMix(reserve=0.6, cancel=0.4))
    source = AirlineWorkload(["item"], workload_config)
    return system_config, source, workload_config


class TestRunScenario:
    def test_basic_run_collects_and_audits(self):
        system_config, source, workload_config = make_inputs()
        result = run_dvp_scenario(
            system_config, counter_items(["item"], 400), source,
            workload_config)
        assert isinstance(result, ScenarioResult)
        assert result.conservation_ok
        assert result.collector.results
        assert 0.0 <= result.commit_rate <= 1.0
        assert result.throughput >= 0.0

    def test_partition_schedule_applied(self):
        system_config, source, workload_config = make_inputs()
        schedule = PartitionSchedule.window(
            20.0, 60.0, [["A", "B"], ["C", "D"]])
        result = run_dvp_scenario(
            system_config, counter_items(["item"], 400), source,
            workload_config, partition_schedule=schedule)
        assert result.conservation_ok
        assert result.system.network.dropped_partition >= 0

    def test_crash_and_recovery_injection(self):
        system_config, source, workload_config = make_inputs(loss=0.1)
        result = run_dvp_scenario(
            system_config, counter_items(["item"], 400), source,
            workload_config,
            crashes=[(25.0, "B")], recoveries=[(45.0, "B")])
        assert result.conservation_ok
        assert result.system.sites["B"].crash_count == 1
        assert result.system.sites["B"].alive

    def test_unrecovered_crash_is_healed_for_settling(self):
        system_config, source, workload_config = make_inputs()
        result = run_dvp_scenario(
            system_config, counter_items(["item"], 400), source,
            workload_config, crashes=[(25.0, "B")])
        assert result.system.sites["B"].alive  # recovered for the audit
        assert result.conservation_ok

    def test_explicit_split_items(self):
        system_config, source, workload_config = make_inputs()
        result = run_dvp_scenario(
            system_config,
            {"item": (CounterDomain(), {"A": 400})},  # all value at A
            source, workload_config)
        assert result.conservation_ok

    def test_deterministic(self):
        def run():
            system_config, source, workload_config = make_inputs(seed=9)
            result = run_dvp_scenario(
                system_config, counter_items(["item"], 400), source,
                workload_config)
            return [(r.txn_id, r.outcome) for r in
                    result.collector.results]

        assert run() == run()


class TestCounterItems:
    def test_shape(self):
        items = counter_items(["a", "b"], 10)
        assert set(items) == {"a", "b"}
        domain, total = items["a"]
        assert isinstance(domain, CounterDomain)
        assert total == 10
