"""Tests for the quorum and primary-copy baselines."""

import pytest

from repro.baselines.common import BaselineConfig
from repro.baselines.primarycopy import PrimaryCopySystem
from repro.baselines.quorum import QuorumSystem
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    ReadFullOp,
    TransactionSpec,
)
from repro.net.link import LinkConfig


def build_quorum(sites=("A", "B", "C"), **kwargs):
    system = QuorumSystem(list(sites), seed=5,
                          link=LinkConfig(base_delay=1.0),
                          config=BaselineConfig(txn_timeout=10.0),
                          **kwargs)
    system.add_item("x", 100)
    return system


def build_pc(sites=("A", "B", "C"), **kwargs):
    system = PrimaryCopySystem(list(sites), seed=5,
                               link=LinkConfig(base_delay=1.0),
                               config=BaselineConfig(txn_timeout=10.0),
                               **kwargs)
    system.add_item("x", "A", 100)
    return system


def run_one(system, origin, spec, duration=40.0):
    results = []
    system.submit(origin, spec, results.append)
    system.run_for(duration)
    assert results
    return results[0]


class TestQuorum:
    def test_update_commits_with_majority(self):
        system = build_quorum()
        result = run_one(system, "A", TransactionSpec(
            ops=(DecrementOp("x", 5),)))
        assert result.committed
        assert system.value("x") == 95

    def test_versions_propagate_to_granting_replicas(self):
        system = build_quorum()
        run_one(system, "A", TransactionSpec(ops=(DecrementOp("x", 5),)))
        versions = [site.store.get("x").version
                    for site in system.sites.values()]
        assert versions.count(1) >= system.write_quorum

    def test_minority_partition_aborts(self):
        system = build_quorum()
        system.network.partition([["A"], ["B", "C"]])
        result = run_one(system, "A", TransactionSpec(
            ops=(DecrementOp("x", 5),)))
        assert not result.committed
        assert result.reason == "timeout"

    def test_majority_partition_commits(self):
        system = build_quorum()
        system.network.partition([["A"], ["B", "C"]])
        result = run_one(system, "B", TransactionSpec(
            ops=(DecrementOp("x", 5),)))
        assert result.committed

    def test_insufficient_value_aborts(self):
        system = build_quorum()
        result = run_one(system, "A", TransactionSpec(
            ops=(DecrementOp("x", 500),)))
        assert not result.committed
        assert result.reason == "insufficient"

    def test_lock_collisions_retry_and_resolve(self):
        system = build_quorum()
        results = []
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 1),)),
                      results.append)
        system.submit("B", TransactionSpec(ops=(DecrementOp("x", 2),)),
                      results.append)
        system.run_for(60.0)
        assert len(results) == 2
        assert sum(result.committed for result in results) == 2
        assert system.value("x") == 97

    def test_no_locks_leaked_after_run(self):
        system = build_quorum()
        for origin in ("A", "B", "C"):
            system.submit(origin, TransactionSpec(
                ops=(DecrementOp("x", 1),)))
        system.run_for(120.0)
        for site in system.sites.values():
            assert site.store.get("x").locked_by is None

    def test_multi_item_spec_rejected(self):
        system = build_quorum()
        system.add_item("y", 5)
        with pytest.raises(ValueError):
            system.submit("A", TransactionSpec(
                ops=(DecrementOp("x", 1), DecrementOp("y", 1))))

    def test_custom_write_quorum(self):
        system = build_quorum(write_quorum=3)
        system.network.partition([["A", "B"], ["C"]])
        result = run_one(system, "A", TransactionSpec(
            ops=(DecrementOp("x", 1),)))
        assert not result.committed  # needs all three replicas

    def test_read_quorum_value(self):
        system = build_quorum()
        result = run_one(system, "A", TransactionSpec(
            ops=(ReadFullOp("x"),)))
        assert result.committed
        assert result.read_values["x"] == 100


class TestPrimaryCopy:
    def test_update_at_primary(self):
        system = build_pc()
        result = run_one(system, "A", TransactionSpec(
            ops=(DecrementOp("x", 5),)))
        assert result.committed
        assert system.value("x") == 95

    def test_update_forwarded_from_backup(self):
        system = build_pc()
        result = run_one(system, "B", TransactionSpec(
            ops=(DecrementOp("x", 5),)))
        assert result.committed
        assert system.value("x") == 95

    def test_backups_receive_propagation(self):
        system = build_pc()
        run_one(system, "A", TransactionSpec(ops=(DecrementOp("x", 5),)))
        system.run_for(10.0)
        for site in system.sites.values():
            assert site.store.get("x").value == 95

    def test_cut_off_backup_times_out(self):
        system = build_pc()
        system.network.partition([["A"], ["B", "C"]])
        result = run_one(system, "B", TransactionSpec(
            ops=(DecrementOp("x", 5),)))
        assert not result.committed
        assert result.reason == "timeout"

    def test_primary_group_still_works(self):
        system = build_pc()
        system.network.partition([["A", "C"], ["B"]])
        result = run_one(system, "C", TransactionSpec(
            ops=(DecrementOp("x", 5),)))
        assert result.committed

    def test_stale_reads_served_locally_when_allowed(self):
        system = build_pc(allow_stale_reads=True)
        run_one(system, "A", TransactionSpec(ops=(DecrementOp("x", 5),)))
        # Cut B off; it can still answer a stale read instantly.
        system.network.partition([["A", "C"], ["B"]])
        result = run_one(system, "B", TransactionSpec(
            ops=(ReadFullOp("x"),)))
        assert result.committed
        assert result.reason == "stale-read"

    def test_reads_go_to_primary_by_default(self):
        system = build_pc(allow_stale_reads=False)
        system.network.partition([["A", "C"], ["B"]])
        result = run_one(system, "B", TransactionSpec(
            ops=(ReadFullOp("x"),)))
        assert not result.committed

    def test_insufficient_aborts(self):
        system = build_pc()
        result = run_one(system, "B", TransactionSpec(
            ops=(DecrementOp("x", 5000),)))
        assert not result.committed
        assert result.reason == "insufficient"

    def test_increment(self):
        system = build_pc()
        result = run_one(system, "C", TransactionSpec(
            ops=(IncrementOp("x", 11),)))
        assert result.committed
        assert system.value("x") == 111
