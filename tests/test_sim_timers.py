"""Unit tests for Timer and PeriodicTimer."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.timers import PeriodicTimer, Timer


class TestTimer:
    def test_fires_after_delay(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(5.0)
        sim.run()
        assert fired == [5.0]

    def test_cancel_prevents_firing(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(True))
        timer.start(5.0)
        timer.cancel()
        sim.run()
        assert fired == []

    def test_restart_replaces_previous(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(5.0)
        sim.run_until(2.0)
        timer.start(5.0)  # re-arm at t=2 -> fires at 7
        sim.run()
        assert fired == [7.0]

    def test_armed_flag(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        assert not timer.armed
        timer.start(1.0)
        assert timer.armed
        timer.cancel()
        assert not timer.armed

    def test_not_armed_after_firing(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        timer.start(1.0)
        sim.run()
        assert not timer.armed

    def test_cancel_idempotent(self):
        timer = Timer(Simulator(), lambda: None)
        timer.cancel()
        timer.cancel()


class TestPeriodicTimer:
    def test_fires_repeatedly(self):
        sim = Simulator()
        hits = []
        timer = PeriodicTimer(sim, 2.0, lambda: hits.append(sim.now))
        timer.start()
        sim.run_until(7.0)
        timer.stop()
        assert hits == [2.0, 4.0, 6.0]

    def test_stop_halts(self):
        sim = Simulator()
        hits = []
        timer = PeriodicTimer(sim, 1.0, lambda: hits.append(sim.now))
        timer.start()
        sim.run_until(2.5)
        timer.stop()
        sim.run_until(10.0)
        assert hits == [1.0, 2.0]

    def test_action_may_stop_timer(self):
        sim = Simulator()
        hits = []
        timer = PeriodicTimer(sim, 1.0, lambda: None)

        def action():
            hits.append(sim.now)
            if len(hits) == 3:
                timer.stop()

        timer = PeriodicTimer(sim, 1.0, action)
        timer.start()
        sim.run_until(10.0)
        assert hits == [1.0, 2.0, 3.0]

    def test_start_idempotent(self):
        sim = Simulator()
        hits = []
        timer = PeriodicTimer(sim, 1.0, lambda: hits.append(sim.now))
        timer.start()
        timer.start()
        sim.run_until(1.0)
        assert hits == [1.0]

    def test_period_must_be_positive(self):
        with pytest.raises(ValueError):
            PeriodicTimer(Simulator(), 0.0, lambda: None)

    def test_running_flag(self):
        timer = PeriodicTimer(Simulator(), 1.0, lambda: None)
        assert not timer.running
        timer.start()
        assert timer.running
        timer.stop()
        assert not timer.running
