"""Chaos-flavoured regressions for the commit-protocol baselines:
the crash-between-prepare-and-decide window, the quorum stale-grant
leak, and the budgeted baseline explorer itself."""

from repro.baselines.common import BaselineConfig, PendingDone
from repro.baselines.paxoscommit import PaxosCommitSystem
from repro.baselines.quorum import LockReply, QuorumSystem, _Attempt
from repro.baselines.twopc import TwoPCSystem
from repro.chaos.baseline_chaos import (
    explore_baseline,
    run_baseline_chaos,
    sample_baseline_plan,
)
from repro.chaos.plan import CrashSite, FaultPlan, RecoverSite
from repro.chaos.runner import ChaosConfig
from repro.core.transactions import (
    IncrementOp,
    TransactionSpec,
    TransferOp,
)
from repro.net.link import LinkConfig

QUICK = ChaosConfig(sites=3, items=2, txns=8, duration=40.0,
                    txn_timeout=8.0, retransmit_period=3.0,
                    settle=80.0)


def _coordinated(cls, sites=("S0", "S1", "S2")):
    system = cls(list(sites), seed=7,
                 link=LinkConfig(base_delay=1.0, jitter=0.0),
                 config=BaselineConfig(txn_timeout=8.0, retry_period=3.0))
    for index, site in enumerate(sites):
        system.add_item(f"acct_{index}", site, 100)
    return system


class TestCrashBetweenPrepareAndDecide:
    """The in-doubt window, driven through the chaos FaultPlan path
    (the same compile() duck-typing the explorer relies on)."""

    PLAN = FaultPlan((CrashSite(at=2.5, site="S0"),
                      RecoverSite(at=40.0, site="S0")))

    def _submit(self, system):
        results = []
        system.sim.at(1.0, lambda: system.submit(
            "S0", TransactionSpec(ops=(TransferOp("acct_0", "acct_1",
                                                  5),)), results.append))
        return results

    def test_twopc_participant_blocks_through_the_window(self):
        """2PC's dependent recovery: the never-crashed participant does
        not inquire, so it stays in doubt even after the coordinator is
        back — the blocking foil E15 quantifies."""
        system = _coordinated(TwoPCSystem)
        self._submit(system)
        self.PLAN.compile(system)
        system.run_for(30.0)
        # In-doubt window: the participant holds its lock and waits.
        assert system.currently_blocked()
        system.run_for(120.0)  # coordinator recovery at t=40 in here
        assert system.currently_blocked()

    def test_twopc_resolves_via_participant_recovery_not_stale_timers(self):
        """The participant's own crash+recover starts the inquiry
        pusher against its *rebuilt* in-doubt state; the undecided
        coordinator answers presumed-abort. Nothing armed against the
        pre-crash incarnation fires afterwards."""
        plan = FaultPlan(self.PLAN.actions +
                         (CrashSite(at=60.0, site="S1"),
                          RecoverSite(at=62.0, site="S1")))
        system = _coordinated(TwoPCSystem)
        self._submit(system)
        plan.compile(system)
        system.run_for(150.0)
        assert system.currently_blocked() == []
        assert system.sites["S1"].store.get("acct_1").locked_by is None
        assert system.total_value() == 300

    def test_paxos_decides_inside_the_same_window(self):
        system = _coordinated(PaxosCommitSystem)
        self._submit(system)
        self.PLAN.compile(system)
        system.run_for(30.0)
        # Before the coordinator is even back, the participants have
        # taken over and decided through the acceptor majority.
        assert system.currently_blocked() == []
        system.run_for(120.0)
        assert system.currently_blocked() == []
        assert system.total_value() == 300


class TestQuorumStaleGrant:
    """Regression for the abandoned-round grant leak: a grant that
    arrives after ``_retry`` reset the attempt holds a real lock at the
    replica, and nothing would ever release it."""

    def _build(self):
        system = QuorumSystem(
            ["A", "B", "C"], seed=3,
            link=LinkConfig(base_delay=1.0, jitter=0.0),
            config=BaselineConfig(txn_timeout=10.0, retry_period=2.0))
        system.add_item("x", 10)
        return system

    def _attempt(self, system, round_number):
        coordinator = system.sites["A"]
        attempt = _Attempt("A#1", TransactionSpec(
            ops=(IncrementOp("x", 1),)), PendingDone(None), 0.0,
            round=round_number)
        coordinator._attempts["A#1"] = attempt
        return coordinator, attempt

    def test_stale_grant_from_abandoned_round_is_released(self):
        system = self._build()
        coordinator, _attempt_state = self._attempt(system, 1)
        system.sites["C"].store.get("x").locked_by = "A#1"
        coordinator._on_lock_reply(LockReply("A#1", "C", "x", True,
                                             0, 10, round=0))
        system.run_for(5.0)
        assert system.sites["C"].store.get("x").locked_by is None

    def test_regranted_replica_keeps_its_current_lock(self):
        system = self._build()
        coordinator, attempt = self._attempt(system, 1)
        # The *current* round already re-granted at C — the late
        # round-0 echo must not release a lock we still hold.
        attempt.grants["C"] = (0, 10)
        system.sites["C"].store.get("x").locked_by = "A#1"
        coordinator._on_lock_reply(LockReply("A#1", "C", "x", True,
                                             0, 10, round=0))
        system.run_for(5.0)
        assert system.sites["C"].store.get("x").locked_by == "A#1"

    def test_straggler_grant_after_finish_is_released(self):
        system = self._build()
        coordinator = system.sites["A"]
        system.sites["C"].store.get("x").locked_by = "A#9"
        coordinator._on_lock_reply(LockReply("A#9", "C", "x", True,
                                             0, 10, round=0))
        system.run_for(5.0)
        assert system.sites["C"].store.get("x").locked_by is None

    def test_contention_leaves_no_replica_locked(self):
        system = self._build()
        for origin in ("A", "B", "C"):
            system.sim.at(1.0, lambda o=origin: system.submit(
                o, TransactionSpec(ops=(IncrementOp("x", 1),))))
        system.run_for(60.0)
        for site in system.sites.values():
            assert site.store.get("x").locked_by is None


class TestBaselineExplorer:
    def test_plan_sampling_is_pure(self):
        first = sample_baseline_plan(7, 3, QUICK)
        second = sample_baseline_plan(7, 3, QUICK)
        assert first == second
        assert sample_baseline_plan(7, 4, QUICK) != first

    def test_single_run_oracles_pass(self):
        plan = sample_baseline_plan(7, 0, QUICK)
        result = run_baseline_chaos(QUICK, plan, seed=1234, index=0)
        assert not result.failed, result.summary()
        assert result.total_value == QUICK.total // QUICK.items * \
            QUICK.items

    def test_explore_smoke_is_deterministic(self):
        first = explore_baseline(QUICK, budget=4, master_seed=19)
        second = explore_baseline(QUICK, budget=4, master_seed=19)
        assert first.ok, first.describe()
        assert first.digest() == second.digest()
        assert first.runs == 4
        assert "exploration digest:" in first.describe()

    def test_different_seed_different_digest(self):
        first = explore_baseline(QUICK, budget=3, master_seed=19)
        second = explore_baseline(QUICK, budget=3, master_seed=23)
        assert first.digest() != second.digest()
