"""Unit tests for baseline-internal mechanisms: message dedup,
escrow accounting, the shared store, exactly-once callbacks."""

import pytest

from repro.baselines.common import (
    BaselineConfig,
    IdSource,
    PendingDone,
    WholeStore,
    make_result,
)
from repro.baselines.escrow import _CentralItem
from repro.baselines.twopc import PrepareMsg, SimpleOp, TwoPCSystem
from repro.core.transactions import Outcome
from repro.net.link import LinkConfig


class TestWholeStore:
    def test_create_and_get(self):
        store = WholeStore()
        store.create("x", 5)
        assert store.get("x").value == 5
        assert "x" in store and "y" not in store

    def test_duplicate_create_rejected(self):
        store = WholeStore()
        store.create("x", 5)
        with pytest.raises(ValueError):
            store.create("x", 6)


class TestPendingDone:
    def test_fires_exactly_once(self):
        seen = []
        done = PendingDone(seen.append)
        result = make_result("t", "", Outcome.COMMITTED, "ok", "A",
                             0.0, 1.0)
        assert done.fire(result)
        assert not done.fire(result)
        assert len(seen) == 1

    def test_none_callback_tolerated(self):
        done = PendingDone(None)
        assert done.fire(make_result("t", "", Outcome.ABORTED, "x", "A",
                                     0.0, 1.0))
        assert done.collected


class TestIdSource:
    def test_monotone_and_prefixed(self):
        ids = IdSource("W")
        assert ids.next() == "W#1"
        assert ids.next() == "W#2"


class TestBaselineConfig:
    def test_defaults(self):
        config = BaselineConfig()
        assert config.txn_timeout > 0
        assert config.retry_period > 0


class TestEscrowAccounting:
    def test_inf_reflects_outstanding_decrements(self):
        item = _CentralItem(value=100)
        item.journal["t1"] = ("dec", 30)
        item.journal["t2"] = ("dec", 20)
        item.journal["t3"] = ("inc", 999)  # increments don't reduce inf
        assert item.escrow_inf() == 50

    def test_inf_equals_value_when_quiet(self):
        assert _CentralItem(value=42).escrow_inf() == 42


class TestTwoPCDedup:
    def build(self):
        system = TwoPCSystem(["A", "B"], seed=1,
                             link=LinkConfig(base_delay=1.0))
        system.add_item("acct_A", "A", 100)
        system.add_item("acct_B", "B", 100)
        return system

    def test_duplicate_prepare_ignored(self):
        system = self.build()
        site_b = system.sites["B"]
        message = PrepareMsg("A#1", "A", (SimpleOp("dec", "acct_B", 5),))
        site_b._on_prepare(message)
        log_length = len(site_b.log)
        site_b._on_prepare(message)  # duplicate delivery
        assert len(site_b.log) == log_length
        assert site_b.store.get("acct_B").locked_by == "A#1"

    def test_prepare_checks_feasibility_against_shadow(self):
        # Two decrements in one prepare whose SUM overdraws must be
        # refused even though each alone fits.
        system = self.build()
        site_b = system.sites["B"]
        message = PrepareMsg("A#1", "A", (SimpleOp("dec", "acct_B", 60),
                                          SimpleOp("dec", "acct_B", 60)))
        site_b._on_prepare(message)
        assert site_b.store.get("acct_B").locked_by is None  # voted no

    def test_decision_for_unknown_txn_is_acked_not_crashed(self):
        from repro.baselines.twopc import DecisionMsg
        system = self.build()
        site_b = system.sites["B"]
        site_b._on_decision(DecisionMsg("A#77", commit=False))
        system.run_for(5.0)  # ack flows back without error
