"""Chaos coverage for rebalancing: the three oracles must hold with
daemons running through the fault horizon, and — just as important —
they must still *detect* real bugs when the buggy writes come from
daemon traffic rather than transactions."""

import glob
import os

import pytest

from repro.chaos import ChaosConfig, FaultPlan, ReproArtifact, explore
from repro.cli import build_parser
from repro.core import fragments
from repro.core.domain import CounterDomain
from repro.core.rebalance import RebalanceConfig, RebalanceDaemon
from repro.core.system import DvPSystem, SystemConfig
from repro.harness.chaos import config_from_args
from repro.net.link import LinkConfig

REPRO_DIR = os.path.join(os.path.dirname(__file__), "repros")


class TestExploreWithDaemons:
    def test_demand_weighted_budget_200_green(self):
        """The acceptance run: full budget, daemons at every site."""
        report = explore(ChaosConfig(rebalance="demand-weighted"),
                         budget=200, master_seed=7)
        assert report.ok, report.describe()

    @pytest.mark.parametrize("policy,seed", [("static-rr", 19),
                                             ("pull", 23)])
    def test_other_policies_green(self, policy, seed):
        report = explore(ChaosConfig(rebalance=policy), budget=40,
                         master_seed=seed)
        assert report.ok, report.describe()

    def test_exploration_deterministic_with_daemons(self):
        """Daemons draw no randomness: same inputs, same digest."""
        config = ChaosConfig(rebalance="pull", rebalance_period=4.0)
        first = explore(config, budget=6, master_seed=11)
        second = explore(config, budget=6, master_seed=11)
        assert first.digest() == second.digest()

    def test_describe_names_the_policy(self):
        config = ChaosConfig(rebalance="pull", rebalance_period=4.0)
        report = explore(config, budget=1, master_seed=3)
        assert "rebalance=pull:4" in report.describe().splitlines()[0]
        plain = explore(ChaosConfig(), budget=1, master_seed=3)
        assert "rebalance" not in plain.describe()


class TestOraclesSeeDaemonTraffic:
    def test_auditor_catches_leak_in_daemon_write(self):
        """Arm the write leak so the *only* leaky write is a daemon
        push — the auditor must still convict. This is the proof that
        planned redistribution runs inside the audited envelope rather
        than beside it."""
        system = DvPSystem(SystemConfig(
            sites=["A", "B", "C"], seed=5, txn_timeout=10.0,
            link=LinkConfig(base_delay=1.0)))
        # Leak disarmed during setup: add_item's writes stay honest.
        system.add_item("x", CounterDomain(), split={"A": 40, "B": 1,
                                                     "C": 1})
        daemon = RebalanceDaemon(system.sites["A"],
                                 RebalanceConfig(period=5.0,
                                                 high_watermark=1.5))
        daemon.start()
        daemon.set_target("x", 10)
        assert system.auditor.all_ok()
        fragments.set_test_leak("write")
        try:
            system.run_for(30.0)
        finally:
            fragments.set_test_leak(None)
        assert daemon.shipments >= 1
        reports = [r for r in system.auditor.check_all() if not r.ok]
        assert reports, \
            "auditor missed a conservation leak carried by daemon traffic"


class TestPlumbing:
    def test_cli_args_reach_chaos_config(self):
        args = build_parser().parse_args(
            ["chaos", "--budget", "5", "--rebalance", "pull",
             "--rebalance-period", "3.5"])
        config = config_from_args(args)
        assert config.rebalance == "pull"
        assert config.rebalance_period == 3.5

    def test_cli_default_is_no_daemons(self):
        args = build_parser().parse_args(["chaos", "--budget", "5"])
        assert config_from_args(args).rebalance is None

    def test_cli_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["chaos", "--rebalance", "no-such-policy"])

    def test_old_config_dicts_still_load(self):
        """Artifacts frozen before the rebalance axis predate the two
        new keys; from_dict must default them, not crash."""
        data = ChaosConfig().to_dict()
        del data["rebalance"]
        del data["rebalance_period"]
        config = ChaosConfig.from_dict(data)
        assert config.rebalance is None
        assert config.rebalance_period == 6.0

    def test_round_trip_preserves_rebalance(self):
        config = ChaosConfig(rebalance="demand-weighted",
                             rebalance_period=2.5)
        assert ChaosConfig.from_dict(config.to_dict()) == config


class TestCommittedRepros:
    def test_rebalance_artifacts_still_reproduce(self):
        """Every committed artifact frozen with daemons running must
        replay to the same oracle verdict (under its recorded
        injection)."""
        paths = []
        for path in sorted(glob.glob(os.path.join(REPRO_DIR, "*.json"))):
            artifact = ReproArtifact.load(path)
            if artifact.config.rebalance is not None:
                paths.append((path, artifact))
        assert paths, "no rebalance-enabled repro artifact is committed"
        for path, artifact in paths:
            result = artifact.replay()  # arms the recorded injection
            assert result.failed_oracles == tuple(
                sorted(artifact.failures)), path
