"""Unit tests for Lamport timestamps and the lock table."""

import pytest

from repro.core.locks import LockTable
from repro.core.timestamps import MAX_SITES, LamportClock, decode, encode


class TestTimestamps:
    def test_encode_decode_roundtrip(self):
        ts = encode(17, 3)
        assert decode(ts) == (17, 3)

    def test_rank_out_of_range(self):
        with pytest.raises(ValueError):
            encode(1, MAX_SITES)
        with pytest.raises(ValueError):
            LamportClock(-1)

    def test_next_is_monotone(self):
        clock = LamportClock(0)
        stamps = [clock.next() for _ in range(10)]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == 10

    def test_uniqueness_across_sites(self):
        a = LamportClock(0)
        b = LamportClock(1)
        stamps = [a.next() for _ in range(20)] + \
            [b.next() for _ in range(20)]
        assert len(set(stamps)) == 40

    def test_site_rank_breaks_counter_ties(self):
        a = LamportClock(0)
        b = LamportClock(1)
        assert a.next() < b.next()  # same counter, lower rank first

    def test_observe_bumps_counter(self):
        clock = LamportClock(0)
        clock.observe(encode(100, 5))
        assert clock.next() > encode(100, 5)

    def test_observe_never_lowers(self):
        clock = LamportClock(0)
        for _ in range(10):
            clock.next()
        clock.observe(encode(2, 1))
        assert clock.counter == 10

    def test_reset_loses_counter(self):
        clock = LamportClock(0)
        for _ in range(5):
            clock.next()
        clock.reset()
        assert clock.counter == 0


class TestLockTableImmediate:
    def test_acquire_all_atomic(self):
        table = LockTable()
        assert table.try_acquire_all("t1", {"a", "b"})
        assert table.holder("a") == "t1"
        assert table.holder("b") == "t1"

    def test_acquire_all_or_nothing(self):
        table = LockTable()
        table.try_acquire_all("t1", {"b"})
        assert not table.try_acquire_all("t2", {"a", "b"})
        assert table.is_free("a")  # nothing partially taken

    def test_release_all(self):
        table = LockTable()
        table.try_acquire_all("t1", {"a", "b"})
        released = table.release_all("t1")
        assert sorted(released) == ["a", "b"]
        assert table.is_free("a")

    def test_held_by(self):
        table = LockTable()
        table.try_acquire_all("t1", {"a"})
        table.try_acquire_all("t2", {"b"})
        assert table.held_by("t1") == {"a"}

    def test_clear(self):
        table = LockTable()
        table.try_acquire_all("t1", {"a"})
        table.clear()
        assert table.is_free("a")


class TestLockTableWaiting:
    def test_immediate_grant_when_free(self):
        table = LockTable()
        assert table.acquire_all_or_wait("t1", {"a"}, lambda: None)

    def test_waiter_granted_on_release(self):
        table = LockTable()
        table.try_acquire_all("t1", {"a"})
        granted = []
        assert not table.acquire_all_or_wait("t2", {"a"},
                                             lambda: granted.append("t2"))
        table.release_all("t1")
        assert granted == ["t2"]
        assert table.holder("a") == "t2"

    def test_fifo_no_overtake(self):
        table = LockTable()
        table.try_acquire_all("t1", {"a"})
        order = []
        table.acquire_all_or_wait("t2", {"a", "b"},
                                  lambda: order.append("t2"))
        # b is free, but granting t3 now would overtake t2.
        granted_now = table.acquire_all_or_wait(
            "t3", {"b"}, lambda: order.append("t3"))
        assert not granted_now
        table.release_all("t1")
        assert order == ["t2"]
        table.release_all("t2")
        assert order == ["t2", "t3"]

    def test_waiting_holds_nothing(self):
        table = LockTable()
        table.try_acquire_all("t1", {"a"})
        table.acquire_all_or_wait("t2", {"a", "b"}, lambda: None)
        assert table.is_free("b")  # no partial holds while queued

    def test_cancel_waiter(self):
        table = LockTable()
        table.try_acquire_all("t1", {"a"})
        granted = []
        table.acquire_all_or_wait("t2", {"a"},
                                  lambda: granted.append("t2"))
        table.cancel_waiter("t2")
        table.release_all("t1")
        assert granted == []
        assert table.is_free("a")

    def test_multiple_waiters_granted_in_order(self):
        table = LockTable()
        table.try_acquire_all("t1", {"a"})
        order = []
        for name in ("t2", "t3"):
            table.acquire_all_or_wait(name, {"a"},
                                      lambda n=name: order.append(n))
        table.release_all("t1")
        assert order == ["t2"]
        table.release_all("t2")
        assert order == ["t2", "t3"]

    def test_disjoint_waiters_granted_together(self):
        table = LockTable()
        table.try_acquire_all("t1", {"a", "b"})
        order = []
        table.acquire_all_or_wait("t2", {"a"}, lambda: order.append("t2"))
        table.acquire_all_or_wait("t3", {"b"}, lambda: order.append("t3"))
        table.release_all("t1")
        assert order == ["t2", "t3"]

    def test_no_deadlock_with_set_waiting(self):
        # Classic deadlock shape (t2 wants {a,b}, t3 wants {b,a}) cannot
        # deadlock because waiters never hold partial sets.
        table = LockTable()
        table.try_acquire_all("t1", {"a", "b"})
        order = []
        table.acquire_all_or_wait("t2", {"a", "b"},
                                  lambda: order.append("t2"))
        table.acquire_all_or_wait("t3", {"b", "a"},
                                  lambda: order.append("t3"))
        table.release_all("t1")
        table.release_all("t2")
        assert order == ["t2", "t3"]
