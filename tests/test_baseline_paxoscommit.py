"""Tests for the Paxos Commit baseline — especially decision
reachability through coordinator failure and acceptor partitions,
which is exactly where it must differ from 2PC."""

import pytest

from repro.baselines.common import BaselineConfig, UnknownItem
from repro.baselines.paxoscommit import PaxosCommitSystem
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    ReadFullOp,
    TransactionSpec,
    TransferOp,
)
from repro.net.link import LinkConfig


def build(sites=("A", "B", "C", "D", "E"), timeout=8.0, retry=2.0,
          seed=5, acceptors=None):
    system = PaxosCommitSystem(
        list(sites), seed=seed, link=LinkConfig(base_delay=1.0,
                                                jitter=0.0),
        config=BaselineConfig(txn_timeout=timeout, retry_period=retry),
        acceptors=acceptors)
    for site in sites:
        system.add_item(f"acct_{site}", site, 100)
    return system


def run_one(system, origin, spec, duration=60.0):
    results = []
    system.submit(origin, spec, results.append)
    system.run_for(duration)
    assert results
    return results[0]


class TestCommitPaths:
    def test_local_transaction_commits(self):
        system = build()
        result = run_one(system, "A", TransactionSpec(
            ops=(DecrementOp("acct_A", 5),)))
        assert result.committed
        assert system.sites["A"].store.get("acct_A").value == 95

    def test_cross_site_transfer_commits(self):
        system = build()
        result = run_one(system, "A", TransactionSpec(
            ops=(TransferOp("acct_A", "acct_B", 10),)))
        assert result.committed
        assert system.sites["A"].store.get("acct_A").value == 90
        assert system.sites["B"].store.get("acct_B").value == 110
        assert system.total_value() == 500

    def test_insufficient_funds_vote_no(self):
        system = build()
        result = run_one(system, "A", TransactionSpec(
            ops=(TransferOp("acct_A", "acct_B", 500),)))
        assert not result.committed
        assert result.reason == "vote-no"
        assert system.total_value() == 500
        assert system.sites["A"].store.get("acct_A").locked_by is None
        assert system.sites["B"].store.get("acct_B").locked_by is None

    def test_read_op(self):
        system = build()
        result = run_one(system, "A", TransactionSpec(
            ops=(ReadFullOp("acct_B"),)))
        assert result.committed
        assert result.read_values["acct_B"] == 100

    def test_unknown_item_refused_synchronously(self):
        system = build()
        with pytest.raises(UnknownItem):
            system.submit("A", TransactionSpec(
                ops=(DecrementOp("nope", 1),)), None)

    def test_default_acceptor_set_is_bounded(self):
        small = PaxosCommitSystem(["A", "B", "C"], seed=1)
        assert small.acceptors == ["A", "B", "C"]
        big = PaxosCommitSystem([f"S{i}" for i in range(20)], seed=1)
        assert len(big.acceptors) == 5
        assert big.majority == 3

    def test_acceptors_must_be_sites(self):
        with pytest.raises(ValueError):
            PaxosCommitSystem(["A", "B", "C"], acceptors=["A", "Z"])


class TestCoordinatorFailure:
    def _prepare_then_crash(self, system):
        """Submit a transfer at A, crash A once B is prepared but the
        decision has not yet been driven."""
        results = []
        system.submit("A", TransactionSpec(
            ops=(TransferOp("acct_A", "acct_B", 10),)), results.append)
        # t=0: A prepares locally + sends Begin; t=1: B prepared and
        # votes; crash A before its leader state sees any phase-2b.
        system.sim.at(1.5, lambda: system.crash("A"))
        return results

    def test_participants_decide_through_coordinator_crash(self):
        """The anti-2PC property: B learns the outcome and releases its
        lock while the coordinator is still down."""
        system = build()
        self._prepare_then_crash(system)
        system.run_for(60.0)
        assert not system.sites["A"].alive
        assert system.currently_blocked() == []
        assert system.sites["B"].store.get("acct_B").locked_by is None
        outcomes = [record.record for record in
                    system.sites["B"].log.scan()
                    if record.record[0].startswith("participant-")]
        assert len(outcomes) == 1

    def test_crashed_coordinator_relearns_outcome_on_recovery(self):
        system = build()
        self._prepare_then_crash(system)
        system.run_for(60.0)
        b_value = system.sites["B"].store.get("acct_B").value
        system.recover("A")
        system.run_for(60.0)
        assert system.currently_blocked() == []
        # Whatever B decided, A applied the same half of the transfer.
        if b_value == 110:
            assert system.sites["A"].store.get("acct_A").value == 90
        else:
            assert system.sites["A"].store.get("acct_A").value == 100
        assert system.total_value() == 500

    def test_recovery_survives_retry_below_round_trip(self):
        """Regression: with retry_period at or below the network round
        trip, the takeover pusher used to escalate the ballot at the
        instant the previous round's promises arrived, so every
        phase-1b failed the current-ballot check and recovery
        livelocked forever."""
        system = build(retry=1.0)  # round trip is 2.0
        self._prepare_then_crash(system)
        system.run_for(60.0)
        assert system.currently_blocked() == []
        assert system.sites["B"].store.get("acct_B").locked_by is None

    def test_agreement_across_all_logs(self):
        system = build()
        self._prepare_then_crash(system)
        system.run_for(60.0)
        system.recover("A")
        system.run_for(60.0)
        per_txn = {}
        for site in system.sites.values():
            for envelope in site.log.scan():
                record = envelope.record
                if record[0] == "participant-commit":
                    per_txn.setdefault(record[1], set()).add(True)
                elif record[0] == "participant-abort":
                    per_txn.setdefault(record[1], set()).add(False)
        assert all(len(verdicts) == 1 for verdicts in per_txn.values())


class TestAcceptorPartitions:
    def test_majority_side_decides_during_partition(self):
        system = build()
        # Split off A+B; acceptors C, D, E stay together with the
        # participants' homes C/D.
        system.sim.at(0.5, lambda: system.network.partition(
            [["A", "B"]]))
        results = []
        system.sim.at(1.0, lambda: system.submit(
            "C", TransactionSpec(ops=(TransferOp("acct_C", "acct_D",
                                                 5),)), results.append))
        system.run_for(40.0)
        assert results and results[0].committed
        assert system.currently_blocked() == []

    def test_minority_side_blocks_until_heal(self):
        system = build()
        system.sim.at(0.5, lambda: system.network.partition(
            [["A", "B"]]))
        results = []
        system.sim.at(1.0, lambda: system.submit(
            "A", TransactionSpec(ops=(TransferOp("acct_A", "acct_B",
                                                 5),)), results.append))
        system.run_for(40.0)
        # Two acceptors reachable < majority of 3: no decision yet --
        # and crucially no unilateral client abort either.
        assert not results
        system.network.heal()
        system.run_for(60.0)
        assert results  # consensus resolved it after the heal
        assert system.currently_blocked() == []
        assert system.total_value() == 500

    def test_losing_f_acceptors_is_harmless(self):
        system = build()
        system.sim.at(0.5, lambda: system.crash("D"))
        system.sim.at(0.5, lambda: system.crash("E"))
        result = run_one(system, "A", TransactionSpec(
            ops=(TransferOp("acct_A", "acct_B", 5),)))
        assert result.committed
        assert system.total_value(["acct_A", "acct_B", "acct_C"]) == 300


class TestReplayDeterminism:
    def _run(self, seed):
        system = build(seed=seed)
        system.sim.enable_trace()
        outcomes = []
        for origin, src, dst in (("A", "acct_A", "acct_B"),
                                 ("B", "acct_B", "acct_C"),
                                 ("C", "acct_C", "acct_A")):
            system.sim.at(1.0, lambda o=origin, s=src, d=dst:
                          system.submit(o, TransactionSpec(
                              ops=(TransferOp(s, d, 3),)),
                              lambda r: outcomes.append(
                                  (r.txn_id, r.outcome.name))))
        system.sim.at(5.0, lambda: system.crash("B"))
        system.sim.at(20.0, lambda: system.recover("B"))
        system.run_for(90.0)
        return outcomes, system.sim.trace_fingerprint(), \
            system.total_value()

    def test_identical_seeds_identical_runs(self):
        first = self._run(17)
        second = self._run(17)
        assert first == second

    def test_different_seeds_may_differ_but_conserve(self):
        outcomes, _fp, total = self._run(23)
        assert total == 500
