"""Unit tests for the concurrency-control schemes and the
redistribution policies."""

import random

import pytest

from repro.core.cc import Conc1, Conc2, make_cc
from repro.core.domain import CounterDomain
from repro.core.policies import (
    AskAllPolicy,
    AskFewPolicy,
    ReservingPolicy,
    make_policy,
)
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import DecrementOp, TransactionSpec
from repro.net.link import LinkConfig

domain = CounterDomain()
rng = random.Random(1)


def build(cc="conc1"):
    system = DvPSystem(SystemConfig(
        sites=["A", "B", "C"], seed=8, cc=cc, txn_timeout=10.0,
        link=LinkConfig(base_delay=1.0)))
    system.add_item("x", CounterDomain(), total=30)
    return system


class TestMakeCc:
    def test_factory(self):
        assert isinstance(make_cc("conc1"), Conc1)
        assert isinstance(make_cc("conc2"), Conc2)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_cc("conc3")


class TestConc1:
    def test_lock_refused_for_stale_ts(self):
        system = build("conc1")
        site = system.sites["A"]
        site.fragments.stamp("x", 1 << 50)
        assert not system.cc.may_lock_local(site, 5, {"x"})

    def test_lock_granted_stamps_fragment(self):
        system = build("conc1")
        site = system.sites["A"]
        ts = site.clock.next()
        assert system.cc.may_lock_local(site, ts, {"x"})
        system.cc.on_lock_granted(site, ts, {"x"})
        assert site.fragments.timestamp("x") == ts

    def test_never_waits(self):
        assert not Conc1().waits_for_locks
        assert not Conc1().broadcast_at_init

    def test_conflicting_local_transactions_abort(self):
        system = build("conc1")
        results = []
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 50),)),
                      results.append)  # gathers, holds the lock
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 1),)),
                      results.append)
        system.run_for(0.1)
        assert results and results[0].reason == "locked"


class TestConc2:
    def test_waits_and_broadcasts(self):
        scheme = Conc2()
        assert scheme.waits_for_locks
        assert scheme.broadcast_at_init
        assert scheme.may_honor(None, 0, "x")

    def test_conflicting_local_transactions_queue(self):
        system = build("conc2")
        results = []
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 2),),
                                           work=2.0), results.append)
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 1),)),
                      results.append)
        system.run_for(10.0)
        assert len(results) == 2
        assert all(result.committed for result in results)
        # The second waited for the first's locks.
        assert results[1].latency >= 2.0

    def test_queued_transaction_timeout_cancels_wait(self):
        system = build("conc2")
        results = []
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 2),),
                                           work=30.0), results.append)
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 1),)),
                      results.append)
        system.run_for(15.0)
        # The queued one times out (10.0) while the worker computes.
        assert results and results[0].reason == "timeout"
        system.run_for(60.0)
        assert len(results) == 2


class TestPolicies:
    def test_factory(self):
        assert isinstance(make_policy("ask-all"), AskAllPolicy)
        assert isinstance(make_policy("ask-few", fanout=2), AskFewPolicy)
        assert isinstance(make_policy("reserving",
                                      reserve_fraction=0.25),
                          ReservingPolicy)
        with pytest.raises(ValueError):
            make_policy("nope")

    def test_ask_all_targets_every_peer(self):
        targets = AskAllPolicy().targets("A", ["B", "C", "D"], 7, domain,
                                         rng)
        assert targets == [("B", 7), ("C", 7), ("D", 7)]

    def test_ask_all_grants_everything_available(self):
        assert AskAllPolicy().grant(domain, 5, 10) == 5
        assert AskAllPolicy().grant(domain, 10, 5) == 5

    def test_ask_few_fanout_bounds(self):
        policy = AskFewPolicy(fanout=2)
        targets = policy.targets("A", ["B", "C", "D"], 7, domain, rng)
        assert len(targets) == 2
        assert all(ask == 7 for _peer, ask in targets)

    def test_ask_few_handles_small_peer_sets(self):
        policy = AskFewPolicy(fanout=5)
        assert len(policy.targets("A", ["B"], 7, domain, rng)) == 1

    def test_ask_few_validates_fanout(self):
        with pytest.raises(ValueError):
            AskFewPolicy(fanout=0)

    def test_reserving_keeps_fraction_at_home(self):
        policy = ReservingPolicy(reserve_fraction=0.5)
        assert policy.grant(domain, 10, 10) == 5
        assert policy.grant(domain, 10, 3) == 3

    def test_reserving_validates_fraction(self):
        with pytest.raises(ValueError):
            ReservingPolicy(reserve_fraction=1.0)

    def test_empty_peer_list(self):
        assert AskAllPolicy().targets("A", [], 7, domain, rng) == []
        assert AskFewPolicy().targets("A", [], 7, domain, rng) == []
