"""Tests for the hybrid DvP/centralized mode manager."""

import pytest

from repro.core.domain import CounterDomain
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    ReadFullOp,
    TransactionSpec,
)
from repro.hybrid import HybridSystem, ItemMode
from repro.net.link import LinkConfig


def build(timeout=12.0):
    system = DvPSystem(SystemConfig(
        sites=["A", "B", "C"], seed=21, txn_timeout=timeout,
        link=LinkConfig(base_delay=1.0)))
    system.add_item("x", CounterDomain(), total=90)
    return system, HybridSystem(system)


def consolidate(system, hybrid, item="x", home="A"):
    results = []
    hybrid.consolidate(item, home, results.append)
    system.run_for(60.0)
    assert results and results[0].committed
    return results[0]


class TestModes:
    def test_items_start_in_dvp_mode(self):
        _system, hybrid = build()
        assert hybrid.mode_of("x") is ItemMode.DVP
        assert hybrid.home_of("x") is None

    def test_consolidate_flips_to_central(self):
        system, hybrid = build()
        consolidate(system, hybrid)
        assert hybrid.mode_of("x") is ItemMode.CENTRAL
        assert hybrid.home_of("x") == "A"
        assert system.fragment_values("x") == {"A": 90, "B": 0, "C": 0}

    def test_failed_consolidation_keeps_dvp(self):
        system, hybrid = build()
        system.network.partition([["A"], ["B", "C"]])
        results = []
        hybrid.consolidate("x", "A", results.append)
        system.run_for(60.0)
        assert results and not results[0].committed
        assert hybrid.mode_of("x") is ItemMode.DVP

    def test_deconsolidate_redistributes(self):
        system, hybrid = build()
        consolidate(system, hybrid)
        assert hybrid.deconsolidate("x", {"B": 30, "C": 30})
        system.run_for(60.0)
        assert hybrid.mode_of("x") is ItemMode.DVP
        assert system.fragment_values("x") == {"A": 30, "B": 30, "C": 30}
        system.auditor.assert_ok()

    def test_deconsolidate_requires_central_mode(self):
        _system, hybrid = build()
        assert not hybrid.deconsolidate("x", {"B": 1})

    def test_deconsolidate_cannot_overdraw(self):
        system, hybrid = build()
        consolidate(system, hybrid)
        assert not hybrid.deconsolidate("x", {"B": 500})
        assert hybrid.mode_of("x") is ItemMode.CENTRAL


class TestRouting:
    def test_home_submissions_run_locally(self):
        system, hybrid = build()
        consolidate(system, hybrid)
        results = []
        hybrid.submit("A", TransactionSpec(
            ops=(DecrementOp("x", 5),)), results.append)
        system.run_for(5.0)
        assert results and results[0].committed
        assert results[0].latency == 0.0
        assert hybrid.forwarded == 0

    def test_remote_submissions_forwarded(self):
        system, hybrid = build()
        consolidate(system, hybrid)
        results = []
        hybrid.submit("B", TransactionSpec(
            ops=(DecrementOp("x", 5),)), results.append)
        system.run_for(20.0)
        assert results and results[0].committed
        assert hybrid.forwarded == 1
        assert results[0].latency >= 2.0  # one round trip
        assert system.fragment_values("x")["A"] == 85
        system.auditor.assert_ok()

    def test_reads_at_home_are_local_and_exact(self):
        system, hybrid = build()
        consolidate(system, hybrid)
        results = []
        hybrid.submit("A", TransactionSpec(
            ops=(ReadFullOp("x"),)), results.append)
        system.run_for(10.0)
        assert results and results[0].committed
        assert results[0].read_values["x"] == 90
        assert results[0].latency == 0.0

    def test_forwarded_read_returns_value(self):
        system, hybrid = build()
        consolidate(system, hybrid)
        results = []
        hybrid.submit("C", TransactionSpec(
            ops=(ReadFullOp("x"),)), results.append)
        system.run_for(20.0)
        assert results and results[0].committed
        assert results[0].read_values["x"] == 90

    def test_dvp_items_route_normally(self):
        system, hybrid = build()
        results = []
        hybrid.submit("B", TransactionSpec(
            ops=(DecrementOp("x", 5),)), results.append)
        system.run_for(10.0)
        assert results and results[0].committed
        assert hybrid.forwarded == 0

    def test_partition_aborts_forwarded_transactions(self):
        system, hybrid = build()
        consolidate(system, hybrid)
        system.network.partition([["A"], ["B", "C"]])
        results = []
        hybrid.submit("B", TransactionSpec(
            ops=(DecrementOp("x", 5),)), results.append)
        system.run_for(60.0)
        assert results
        assert not results[0].committed
        assert results[0].reason == "forward-timeout"
        # The bound still holds: centralized mode costs availability,
        # never unboundedness.
        assert results[0].latency <= system.config.txn_timeout + 1e-6

    def test_mixed_homes_rejected(self):
        system, hybrid = build()
        system.add_item("y", CounterDomain(), total=30)
        consolidate(system, hybrid, item="x", home="A")
        consolidate(system, hybrid, item="y", home="B")
        with pytest.raises(ValueError):
            hybrid.submit("C", TransactionSpec(
                ops=(DecrementOp("x", 1), DecrementOp("y", 1))))

    def test_forwarded_deltas_feed_auditor_once(self):
        system, hybrid = build()
        consolidate(system, hybrid)
        hybrid.submit("B", TransactionSpec(ops=(DecrementOp("x", 5),)))
        system.run_for(20.0)
        assert system.auditor.expected("x") == 85
        system.auditor.assert_ok()


class TestRoundTrip:
    def test_full_cycle_conserves(self):
        system, hybrid = build()
        consolidate(system, hybrid)
        hybrid.submit("B", TransactionSpec(ops=(DecrementOp("x", 10),)))
        system.run_for(20.0)
        assert hybrid.deconsolidate("x", {"B": 20, "C": 20})
        system.run_for(60.0)
        results = []
        hybrid.submit("B", TransactionSpec(
            ops=(DecrementOp("x", 15),)), results.append)
        system.run_for(20.0)
        assert results and results[0].committed
        system.run_for(100.0)
        system.auditor.assert_ok()
        assert system.auditor.expected("x") == 65


def build_path_sensitive(timeout=12.0):
    system = DvPSystem(SystemConfig(
        sites=["A", "B", "C"], seed=21, txn_timeout=timeout,
        link=LinkConfig(base_delay=1.0)))
    system.add_item("x", CounterDomain(), total=90)
    return system, HybridSystem(system, path_sensitive=True)


class TestPathSensitive:
    """Soethout-style local coordination avoidance: a provably-local
    transaction at a non-home site commits there instead of being
    forwarded to the centralized home."""

    def test_increment_at_non_home_commits_locally(self):
        system, hybrid = build_path_sensitive()
        consolidate(system, hybrid)
        forwards_before = hybrid.forwarded
        results = []
        hybrid.submit("B", TransactionSpec(
            ops=(IncrementOp("x", 5),)), results.append)
        system.run_for(10.0)
        assert results and results[0].committed
        assert hybrid.local_commits == 1
        assert hybrid.forwarded == forwards_before

    def test_covered_decrement_commits_locally_after_dispersal(self):
        system, hybrid = build_path_sensitive()
        consolidate(system, hybrid)
        hybrid.submit("B", TransactionSpec(ops=(IncrementOp("x", 5),)))
        system.run_for(10.0)
        # B's fragment now holds 5; a decrement of 3 is covered.
        results = []
        hybrid.submit("B", TransactionSpec(
            ops=(DecrementOp("x", 3),)), results.append)
        system.run_for(10.0)
        assert results and results[0].committed
        assert hybrid.local_commits == 2

    def test_uncovered_decrement_still_forwards(self):
        system, hybrid = build_path_sensitive()
        consolidate(system, hybrid)
        forwards_before = hybrid.forwarded
        results = []
        hybrid.submit("B", TransactionSpec(
            ops=(DecrementOp("x", 5),)), results.append)
        system.run_for(20.0)
        assert results and results[0].committed
        assert hybrid.forwarded == forwards_before + 1
        assert hybrid.local_commits == 0

    def test_full_read_always_forwards(self):
        system, hybrid = build_path_sensitive()
        consolidate(system, hybrid)
        results = []
        hybrid.submit("B", TransactionSpec(
            ops=(ReadFullOp("x"),)), results.append)
        system.run_for(20.0)
        assert results and results[0].committed
        assert results[0].read_values["x"] == 90
        assert hybrid.local_commits == 0

    def test_dispersal_disables_home_read_rewrite(self):
        system, hybrid = build_path_sensitive()
        consolidate(system, hybrid)
        hybrid.submit("B", TransactionSpec(ops=(IncrementOp("x", 5),)))
        system.run_for(10.0)
        # x leaked value away from home: a full read at the home must
        # be a real full read (95), not the free fragment read (90).
        results = []
        hybrid.submit("A", TransactionSpec(
            ops=(ReadFullOp("x"),)), results.append)
        system.run_for(30.0)
        assert results and results[0].committed
        assert results[0].read_values["x"] == 95

    def test_default_mode_still_forwards_everything(self):
        system, hybrid = build()  # path_sensitive defaults to False
        consolidate(system, hybrid)
        results = []
        hybrid.submit("B", TransactionSpec(
            ops=(IncrementOp("x", 5),)), results.append)
        system.run_for(20.0)
        assert results and results[0].committed
        assert hybrid.forwarded == 1
        assert hybrid.local_commits == 0

    def test_mixed_traffic_conserves(self):
        system, hybrid = build_path_sensitive()
        consolidate(system, hybrid)
        for site, op in (("B", IncrementOp("x", 4)),
                         ("C", IncrementOp("x", 2)),
                         ("B", DecrementOp("x", 1)),
                         ("A", DecrementOp("x", 6))):
            hybrid.submit(site, TransactionSpec(ops=(op,)))
            system.run_for(15.0)
        system.run_for(60.0)
        system.auditor.assert_ok()
        assert system.auditor.expected("x") == 89
        assert hybrid.local_commits > 0
