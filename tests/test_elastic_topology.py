"""Negative paths and liveness for elastic topology changes.

The happy paths live in the chaos suites and E13; these tests pin the
refusals — re-entrant reshards, removing crashed or already-gone sites,
routing against a stale epoch — and one live join+leave under workload
with the full conservation cross-check green throughout."""

import pytest

from repro.core.domain import CounterDomain
from repro.core.migration import ReshardInProgress
from repro.core.partition import Router, StaleEpoch
from repro.core.site import SiteDown
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import DecrementOp, IncrementOp, TransactionSpec
from repro.net.link import LinkConfig


def _system(sites=4, partitioner="consistent", replicas=2, seed=9,
            items=2, total=80):
    system = DvPSystem(SystemConfig(
        sites=[f"S{index}" for index in range(sites)], seed=seed,
        txn_timeout=10.0, link=LinkConfig(base_delay=1.0),
        partitioner=partitioner, replicas=replicas))
    for index in range(items):
        system.add_item(f"item{index}", CounterDomain(), total=total)
    return system


class TestReentrantReshard:
    def test_second_topology_change_refused_while_migrating(self):
        system = _system()
        system.reshard(1)
        assert system.reshard_in_progress
        with pytest.raises(ReshardInProgress):
            system.add_site("E0")
        with pytest.raises(ReshardInProgress):
            system.remove_site("S0")
        with pytest.raises(ReshardInProgress):
            system.reshard(2)

    def test_next_change_allowed_after_the_drain(self):
        system = _system()
        system.reshard(1)
        system.run_for(60.0)
        assert not system.reshard_in_progress
        system.reshard(2)  # accepted: the previous migration drained
        system.run_for(60.0)
        system.auditor.assert_ok()
        assert system.directory.epoch == 2


class TestRemoveSiteRefusals:
    def test_unknown_site_is_a_key_error(self):
        with pytest.raises(KeyError):
            _system().remove_site("NO-SUCH-SITE")

    def test_crashed_site_refused_until_recovered(self):
        """A dead site's stable log still holds fragment value; the
        decommission must wait for recovery, not strand it."""
        system = _system()
        system.run_until(5.0)
        system.crash("S1")
        with pytest.raises(SiteDown):
            system.remove_site("S1")
        system.recover("S1")
        system.run_for(15.0)  # let recovery retransmits settle
        system.remove_site("S1")
        system.run_for(80.0)
        assert not system.reshard_in_progress
        system.auditor.assert_ok()

    def test_double_decommission_refused(self):
        system = _system()
        system.remove_site("S2")
        system.run_for(80.0)
        assert not system.reshard_in_progress
        with pytest.raises(ValueError, match="decommissioned"):
            system.remove_site("S2")

    def test_duplicate_join_refused(self):
        system = _system()
        with pytest.raises(ValueError, match="already exists"):
            system.add_site("S0")


class TestRouterEpochFencing:
    def test_resolve_against_stale_epoch_raises(self):
        system = _system()
        epoch_before = system.directory.epoch
        system.reshard(1)
        with pytest.raises(StaleEpoch):
            system.router.resolve("item0", epoch_before)

    def test_route_with_stale_hint_retries_against_new_version(self):
        system = _system()
        stale_hint = system.directory.epoch
        system.reshard(1)
        retries_before = system.router.stale_retries
        owners, epoch = system.router.route("item0", epoch_hint=stale_hint)
        assert system.router.stale_retries == retries_before + 1
        assert epoch == system.directory.epoch
        assert owners == system.directory.owners("item0")

    def test_route_with_fresh_hint_is_free(self):
        system = _system()
        retries_before = system.router.stale_retries
        owners, epoch = system.router.route(
            "item0", epoch_hint=system.directory.epoch)
        assert system.router.stale_retries == retries_before
        assert owners == system.directory.owners("item0")


class TestLiveReshardUnderWorkload:
    def test_join_and_leave_with_transactions_in_flight(self):
        """A join at t=20 and a decommission at t=50 while transactions
        keep arriving: everything decides, the books stay exact at a
        mid-migration cut, and both migrations drain."""
        system = _system(sites=4, items=2, total=120)
        results = []
        for index in range(16):
            site = f"S{index % 4}"
            op = (IncrementOp("item0", 2) if index % 3 == 0
                  else DecrementOp(f"item{index % 2}", 3))
            system.sim.at_site(
                site, 2.0 + 4.0 * index,
                lambda site=site, op=op: system.submit(
                    site, TransactionSpec(ops=(op,), label="load"),
                    results.append))
        system.sim.at_global(20.0, lambda: system.add_site("E0"))
        probe_reports = []
        system.sim.at_global(
            25.0, lambda: probe_reports.extend(
                system.auditor.verify_full()))

        def leave() -> None:
            # The join's drain may still be in flight; retry shortly.
            if system.reshard_in_progress:
                system.sim.at_global(system.sim.now + 5.0, leave)
            else:
                system.remove_site("S3")

        system.sim.at_global(50.0, leave)
        system.run_until(70.0)
        system.run_for(120.0)

        assert len(results) == 16  # every submission decided
        assert any(r.committed for r in results)
        assert probe_reports and all(r.ok for r in probe_reports)
        assert "E0" in system.sites
        assert system.sites["S3"].decommissioned
        assert system.directory.epoch == 2
        assert not system.reshard_in_progress
        system.auditor.assert_ok()
        assert all(r.ok for r in system.auditor.verify_full())
