"""Property-based whole-protocol tests.

Hypothesis drives randomized scripts of transactions and failures
against small DvP systems; after every script the conservation
invariant and the non-blocking bound must hold, and the committed
history must replay serializably.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.domain import CounterDomain
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    ReadFullOp,
    TransactionSpec,
)
from repro.harness.serial import check_serializable
from repro.net.link import LinkConfig

SITES = ["P", "Q", "R"]

actions = st.lists(
    st.tuples(
        st.floats(min_value=0.1, max_value=80.0),   # submit time
        st.sampled_from(SITES),                     # site
        st.sampled_from(["dec", "inc", "read"]),    # kind
        st.integers(min_value=1, max_value=25),     # amount
    ),
    min_size=1, max_size=25)

failure_plans = st.lists(
    st.tuples(
        st.floats(min_value=1.0, max_value=60.0),   # crash time
        st.sampled_from(SITES),                     # victim
        st.floats(min_value=1.0, max_value=25.0),   # downtime
    ),
    max_size=2)

TIMEOUT = 10.0


def run_script(seed, script, failures, loss):
    system = DvPSystem(SystemConfig(
        sites=list(SITES), seed=seed, txn_timeout=TIMEOUT,
        retransmit_period=2.0,
        link=LinkConfig(base_delay=1.0, jitter=0.5,
                        loss_probability=loss)))
    system.add_item("x", CounterDomain(), total=60)
    results = []
    for submit_at, site, kind, amount in script:
        if kind == "dec":
            spec = TransactionSpec(ops=(DecrementOp("x", amount),))
        elif kind == "inc":
            spec = TransactionSpec(ops=(IncrementOp("x", amount),))
        else:
            spec = TransactionSpec(ops=(ReadFullOp("x"),))

        def submit(s=site, sp=spec):
            if system.sites[s].alive:
                system.submit(s, sp, results.append)

        system.sim.at(submit_at, submit)
    for crash_at, victim, downtime in failures:
        system.sim.at(crash_at, lambda v=victim: system.crash(v))
        system.sim.at(crash_at + downtime,
                      lambda v=victim: (system.sites[v].alive
                                        or system.recover(v)))
    system.run_until(100.0)
    for site in system.sites.values():
        if not site.alive:
            site.recover()
    system.run_for(400.0)
    return system, results


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=1000), script=actions)
def test_conservation_and_serializability(seed, script):
    system, results = run_script(seed, script, [], loss=0.0)
    system.auditor.assert_ok()
    report = check_serializable(results, {"x": 60},
                                {"x": CounterDomain()})
    assert report.ok, (report.read_mismatches, report.negative_dips)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=1000), script=actions)
def test_every_submitted_transaction_decides(seed, script):
    _system, results = run_script(seed, script, [], loss=0.0)
    # Without crashes, every submission must produce a decision, and
    # within the timeout bound.
    assert len(results) == len(script)
    for result in results:
        assert result.latency <= TIMEOUT + 1e-6


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=1000), script=actions,
       failures=failure_plans,
       loss=st.sampled_from([0.0, 0.2, 0.5]))
def test_conservation_survives_failures(seed, script, failures, loss):
    system, _results = run_script(seed, script, failures, loss)
    system.auditor.assert_ok()


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=1000), script=actions,
       loss=st.sampled_from([0.0, 0.3]))
def test_decisions_bounded_despite_loss(seed, script, loss):
    _system, results = run_script(seed, script, [], loss)
    for result in results:
        assert result.latency <= TIMEOUT + 1e-6
