"""Oracle contracts: each oracle passes healthy runs, catches the bug
class it is responsible for, and the explorer surfaces planted bugs
end-to-end.
"""

from __future__ import annotations

import pytest

from repro.chaos import (
    AuditorOracle,
    ChaosConfig,
    FaultPlan,
    ProgressOracle,
    SerialOracle,
    default_oracles,
    explore,
    run_chaos,
    shrink,
)
from repro.core import fragments

CONFIG = ChaosConfig()


@pytest.fixture
def leak():
    def arm(mode):
        fragments.set_test_leak(mode)
    yield arm
    fragments.set_test_leak(None)


class TestHealthyRuns:
    def test_empty_plan_passes_all_oracles(self):
        result = run_chaos(CONFIG, FaultPlan(), seed=42)
        assert not result.failed
        for oracle in default_oracles():
            assert oracle.check(result) == []

    def test_default_oracle_names(self):
        assert [oracle.name for oracle in default_oracles()] == \
            ["auditor", "serial", "progress", "view"]

    def test_local_reads_are_not_held_to_the_full_band(self):
        # The chaos workload submits ReadLocalOp transactions whose
        # observed value is one site's fragment — far below the logical
        # total. The serial oracle must not flag them (regression for
        # the uneven-quota false positive).
        result = run_chaos(CONFIG, FaultPlan(), seed=42)
        labels = {txn.label for txn in result.system.results}
        assert "chaos:local-read" in labels  # scenario really has them
        assert SerialOracle().check(result) == []


class TestAuditorOracle:
    def test_catches_write_leak(self, leak):
        leak("write")
        result = run_chaos(CONFIG, FaultPlan(), seed=42)
        messages = result.failures.get("auditor", [])
        assert any("VIOLATION" in message for message in messages)
        # Mid-run probes see it while the run is still hot.
        assert any("mid-run probe" in message for message in messages)


class TestSerialOracle:
    def test_catches_quiescent_divergence(self, leak):
        leak("write")
        result = run_chaos(CONFIG, FaultPlan(), seed=42)
        assert any("serial reference execution" in message
                   for message in result.failures.get("serial", []))


class TestProgressOracle:
    def test_flags_site_still_down(self):
        result = run_chaos(CONFIG, FaultPlan(), seed=42)
        result.system.sites["S0"].crash()
        messages = ProgressOracle().check(result)
        assert any("still down" in message for message in messages)

    def test_flags_unattributed_lost_submissions(self):
        result = run_chaos(CONFIG, FaultPlan(), seed=42)
        result.submitted += 5  # 5 phantom submissions, 0 crashes
        messages = ProgressOracle().check(result)
        assert any("never decided" in message for message in messages)

    def test_bounded_decision_time_on_healthy_run(self):
        result = run_chaos(CONFIG, FaultPlan(), seed=42)
        bound = CONFIG.txn_timeout
        assert all(txn.latency <= bound + 1e-9
                   for txn in result.system.results)


class TestExplorerEndToEnd:
    """Acceptance: a planted conservation bug is caught and shrunk."""

    def test_explorer_catches_planted_crash_bug(self, leak):
        leak("crash")
        report = explore(CONFIG, budget=4, master_seed=7)
        assert not report.ok
        case = report.failures[0]
        assert "auditor" in case.failures
        # ...and the shrinker reduces it to <= 3 actions (the
        # acceptance bound; in practice the single crash remains).
        result = shrink(CONFIG, case.plan, case.seed)
        assert len(result.minimal) <= 3
        assert result.final is not None and result.final.failed

    def test_exploration_is_deterministic(self):
        first = explore(CONFIG, budget=3, master_seed=5)
        second = explore(CONFIG, budget=3, master_seed=5)
        assert first.digest() == second.digest()
        assert first.describe() == second.describe()

    def test_sampled_fault_plans_pass_oracles(self):
        # No injection: the protocol itself must survive the grammar.
        report = explore(CONFIG, budget=6, master_seed=31)
        assert report.ok, report.describe()

    def test_stop_at_first_failure(self, leak):
        leak("write")
        report = explore(CONFIG, budget=10, master_seed=5,
                         stop_at_first_failure=True)
        assert len(report.failures) == 1
        assert report.runs < 10
