"""Tests for the proactive rebalancing daemon."""

import pytest

from repro.core.domain import CounterDomain
from repro.core.rebalance import (
    RebalanceConfig,
    RebalanceDaemon,
    install_rebalancing,
)
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    TransactionSpec,
)
from repro.net.link import LinkConfig


def build():
    system = DvPSystem(SystemConfig(
        sites=["A", "B", "C"], seed=17, txn_timeout=10.0,
        link=LinkConfig(base_delay=1.0)))
    system.add_item("x", CounterDomain(), split={"A": 10, "B": 10,
                                                 "C": 10})
    return system


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RebalanceConfig(period=0)
        with pytest.raises(ValueError):
            RebalanceConfig(high_watermark=0.5)


class TestDaemon:
    def test_targets_captured_at_start(self):
        system = build()
        daemon = RebalanceDaemon(system.sites["A"])
        daemon.start()
        assert daemon.targets == {"x": 10}
        assert daemon.running
        daemon.stop()
        assert not daemon.running

    def test_ships_surplus_above_watermark(self):
        system = build()
        daemon = RebalanceDaemon(system.sites["A"],
                                 RebalanceConfig(period=5.0,
                                                 high_watermark=2.0))
        daemon.start()
        # Pump A's fragment far above 2x its target of 10.
        system.submit("A", TransactionSpec(ops=(IncrementOp("x", 40),)))
        system.run_for(20.0)
        assert daemon.shipments >= 1
        assert system.sites["A"].fragments.value("x") <= 20
        system.run_for(100.0)
        system.auditor.assert_ok()

    def test_no_shipment_below_watermark(self):
        system = build()
        daemon = RebalanceDaemon(system.sites["A"],
                                 RebalanceConfig(period=5.0))
        daemon.start()
        system.run_for(50.0)
        assert daemon.shipments == 0
        assert system.sites["A"].fragments.value("x") == 10

    def test_locked_item_skipped(self):
        system = build()
        daemon = RebalanceDaemon(system.sites["A"],
                                 RebalanceConfig(period=5.0))
        daemon.start()
        system.submit("A", TransactionSpec(ops=(IncrementOp("x", 40),)))
        system.sites["A"].locks.try_acquire_all("ghost", {"x"})
        system.run_for(30.0)
        assert daemon.shipments == 0

    def test_round_robin_spreads_over_peers(self):
        system = build()
        daemon = RebalanceDaemon(system.sites["A"],
                                 RebalanceConfig(period=2.0,
                                                 high_watermark=1.5))
        daemon.start()
        destinations = set()
        for _ in range(4):
            system.submit("A", TransactionSpec(
                ops=(IncrementOp("x", 30),)))
            system.run_for(5.0)
        for channel in system.sites["A"].vm.outgoing.values():
            # next_seq is monotonic evidence of sends; entries alone
            # would miss channels whose Vm were already acked (pruned).
            if channel.next_seq > 1:
                destinations.add(channel.dst)
        assert len(destinations) >= 2
        system.run_for(200.0)
        system.auditor.assert_ok()

    def test_dead_site_does_not_tick(self):
        system = build()
        daemon = RebalanceDaemon(system.sites["A"],
                                 RebalanceConfig(period=2.0))
        daemon.start()
        system.submit("A", TransactionSpec(ops=(IncrementOp("x", 50),)))
        system.run_for(0.5)
        system.crash("A")
        system.run_for(20.0)
        assert daemon.shipments == 0


class TestInstall:
    def test_installs_everywhere(self):
        system = build()
        daemons = install_rebalancing(system,
                                      RebalanceConfig(period=3.0))
        assert set(daemons) == {"A", "B", "C"}
        assert all(daemon.running for daemon in daemons.values())

    def test_rebalanced_system_reduces_demand_aborts(self):
        # A site that keeps receiving cancellations accumulates value;
        # rebalancing spreads it so other sites' sales stop aborting.
        system = build()
        install_rebalancing(system, RebalanceConfig(period=4.0,
                                                    high_watermark=1.2))
        results = []
        for step in range(12):
            system.sim.at(step * 5.0 + 0.1, lambda:
                          system.submit("A", TransactionSpec(
                              ops=(IncrementOp("x", 12),))))
            system.sim.at(step * 5.0 + 2.0, lambda:
                          system.submit("B", TransactionSpec(
                              ops=(DecrementOp("x", 15),)),
                              results.append))
        system.run_for(120.0)
        system.run_for(200.0)
        committed = sum(result.committed for result in results)
        assert committed >= len(results) // 2
        system.auditor.assert_ok()
