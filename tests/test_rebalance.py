"""Tests for the proactive rebalancing daemon."""

import pytest

from repro.core.domain import CounterDomain
from repro.core.rebalance import (
    RebalanceConfig,
    RebalanceDaemon,
    install_rebalancing,
)
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    TransactionSpec,
)
from repro.net.link import LinkConfig


def build(**kwargs):
    kwargs.setdefault("sites", ["A", "B", "C"])
    system = DvPSystem(SystemConfig(
        seed=17, txn_timeout=10.0,
        link=LinkConfig(base_delay=1.0), **kwargs))
    system.add_item("x", CounterDomain(), split={"A": 10, "B": 10,
                                                 "C": 10})
    return system


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RebalanceConfig(period=0)
        with pytest.raises(ValueError):
            RebalanceConfig(high_watermark=0.5)
        with pytest.raises(ValueError):
            RebalanceConfig(low_watermark=1.0)
        with pytest.raises(ValueError):
            RebalanceConfig(policy="no-such-policy")
        with pytest.raises(ValueError):
            RebalanceConfig(max_ship=0)
        with pytest.raises(ValueError):
            RebalanceConfig(cooldown=-1.0)


class TestDaemon:
    def test_targets_captured_at_start(self):
        system = build()
        daemon = RebalanceDaemon(system.sites["A"])
        daemon.start()
        assert daemon.targets == {"x": 10}
        assert daemon.running
        daemon.stop()
        assert not daemon.running

    def test_ships_surplus_above_watermark(self):
        system = build()
        daemon = RebalanceDaemon(system.sites["A"],
                                 RebalanceConfig(period=5.0,
                                                 high_watermark=2.0))
        daemon.start()
        # Pump A's fragment far above 2x its target of 10.
        system.submit("A", TransactionSpec(ops=(IncrementOp("x", 40),)))
        system.run_for(20.0)
        assert daemon.shipments >= 1
        assert system.sites["A"].fragments.value("x") <= 20
        system.run_for(100.0)
        system.auditor.assert_ok()

    def test_no_shipment_below_watermark(self):
        system = build()
        daemon = RebalanceDaemon(system.sites["A"],
                                 RebalanceConfig(period=5.0))
        daemon.start()
        system.run_for(50.0)
        assert daemon.shipments == 0
        assert system.sites["A"].fragments.value("x") == 10

    def test_locked_item_skipped(self):
        system = build()
        daemon = RebalanceDaemon(system.sites["A"],
                                 RebalanceConfig(period=5.0))
        daemon.start()
        system.submit("A", TransactionSpec(ops=(IncrementOp("x", 40),)))
        system.sites["A"].locks.try_acquire_all("ghost", {"x"})
        system.run_for(30.0)
        assert daemon.shipments == 0

    def test_round_robin_spreads_over_peers(self):
        system = build()
        daemon = RebalanceDaemon(system.sites["A"],
                                 RebalanceConfig(period=2.0,
                                                 high_watermark=1.5))
        daemon.start()
        destinations = set()
        for _ in range(4):
            system.submit("A", TransactionSpec(
                ops=(IncrementOp("x", 30),)))
            system.run_for(5.0)
        for channel in system.sites["A"].vm.outgoing.values():
            # next_seq is monotonic evidence of sends; entries alone
            # would miss channels whose Vm were already acked (pruned).
            if channel.next_seq > 1:
                destinations.add(channel.dst)
        assert len(destinations) >= 2
        system.run_for(200.0)
        system.auditor.assert_ok()

    def test_adopts_items_registered_after_start(self):
        """Regression: a start-time target snapshot exempted late items.

        The daemon must track items dynamically — an item added after
        start() is adopted at its first-seen value and rebalanced like
        any other.
        """
        system = DvPSystem(SystemConfig(
            sites=["A", "B", "C"], seed=17, txn_timeout=10.0,
            link=LinkConfig(base_delay=1.0)))
        daemon = RebalanceDaemon(system.sites["A"],
                                 RebalanceConfig(period=5.0,
                                                 high_watermark=2.0))
        daemon.start()
        assert daemon.targets == {}
        system.add_item("late", CounterDomain(),
                        split={"A": 10, "B": 10, "C": 10})
        system.run_for(6.0)  # one tick: adopt at the current value
        assert daemon.targets == {"late": 10}
        system.submit("A", TransactionSpec(ops=(IncrementOp("late", 40),)))
        system.run_for(10.0)
        assert daemon.shipments >= 1
        system.run_for(100.0)
        system.auditor.assert_ok()

    def test_no_shipment_to_crashed_peer(self):
        """Regression: shipping to a dead peer strands value in flight.

        B (round-robin's first pick) is down; the surplus must go to a
        live peer so the value stays spendable — a sale at C that needs
        the full shipped amount commits.
        """
        system = build()
        daemon = RebalanceDaemon(system.sites["A"],
                                 RebalanceConfig(period=5.0,
                                                 high_watermark=2.0))
        daemon.start()
        system.crash("B")
        system.submit("A", TransactionSpec(ops=(IncrementOp("x", 40),)))
        system.run_for(30.0)
        assert daemon.shipments >= 1
        assert "B" not in system.sites["A"].vm.outgoing, \
            "surplus was addressed to a crashed peer"
        assert system.sites["A"].vm.unacked_count() == 0
        # The shipped value is live at C: a big local sale commits.
        results = []
        system.submit("C", TransactionSpec(ops=(DecrementOp("x", 30),)),
                      results.append)
        system.run_for(30.0)
        assert results and results[0].committed
        system.recover("B")
        system.run_for(100.0)
        system.auditor.assert_ok()

    def test_failed_acquire_does_not_burn_peer_turn(self):
        """Regression: rotation must advance only on a successful ship.

        A contended lock acquisition (simulated by failing the first
        rebalance try_acquire_all) must leave the round-robin cursor in
        place, so the next successful shipment still goes to the first
        peer.
        """
        system = build()
        site = system.sites["A"]
        daemon = RebalanceDaemon(site, RebalanceConfig(period=5.0,
                                                       high_watermark=2.0))
        daemon.start()
        real = site.locks.try_acquire_all
        failed = []

        def contended(owner, items):
            if owner.startswith("rebalance:") and not failed:
                failed.append(owner)
                return False
            return real(owner, items)

        site.locks.try_acquire_all = contended
        system.submit("A", TransactionSpec(ops=(IncrementOp("x", 40),)))
        system.run_for(6.0)  # first tick: peer peeked, acquisition fails
        assert failed and daemon.shipments == 0
        system.run_for(5.0)  # second tick ships
        assert daemon.shipments == 1
        # Peers of A are [B, C]; the burned turn would have sent to C.
        assert "B" in site.vm.outgoing and \
            site.vm.outgoing["B"].next_seq > 1, \
            "failed acquisition burned the first peer's turn"
        assert daemon.skipped_locked == 1

    def test_shipment_capped_by_max_ship(self):
        system = build()
        daemon = RebalanceDaemon(system.sites["A"],
                                 RebalanceConfig(period=5.0,
                                                 high_watermark=2.0,
                                                 max_ship=7))
        daemon.start()
        system.submit("A", TransactionSpec(ops=(IncrementOp("x", 40),)))
        system.run_for(6.0)
        assert daemon.shipments == 1
        assert system.sites["A"].fragments.value("x") == 50 - 7
        system.run_for(200.0)
        system.auditor.assert_ok()

    def test_cooldown_spaces_shipments(self):
        system = build()
        daemon = RebalanceDaemon(system.sites["A"],
                                 RebalanceConfig(period=5.0,
                                                 high_watermark=2.0,
                                                 max_ship=5,
                                                 cooldown=12.0))
        daemon.start()
        system.submit("A", TransactionSpec(ops=(IncrementOp("x", 40),)))
        system.run_for(16.0)  # ticks at 5, 10, 15; cooldown allows one
        assert daemon.shipments == 1
        system.run_for(200.0)
        system.auditor.assert_ok()

    def test_dead_site_does_not_tick(self):
        system = build()
        daemon = RebalanceDaemon(system.sites["A"],
                                 RebalanceConfig(period=2.0))
        daemon.start()
        system.submit("A", TransactionSpec(ops=(IncrementOp("x", 50),)))
        system.run_for(0.5)
        system.crash("A")
        system.run_for(20.0)
        assert daemon.shipments == 0


class TestPolicies:
    def test_demand_weighted_pushes_toward_demanding_peer(self):
        # C has been asking A for value; B has not. The surplus must go
        # to C even though round-robin order would pick B first.
        system = build()
        site = system.sites["A"]
        daemon = RebalanceDaemon(site, RebalanceConfig(
            period=5.0, high_watermark=2.0, policy="demand-weighted"))
        daemon.start()
        site.demand.note_remote_demand("C", "x", 25)
        system.submit("A", TransactionSpec(ops=(IncrementOp("x", 40),)))
        system.run_for(6.0)
        assert daemon.shipments == 1
        assert "C" in site.vm.outgoing and \
            site.vm.outgoing["C"].next_seq > 1
        assert "B" not in site.vm.outgoing
        system.run_for(200.0)
        system.auditor.assert_ok()

    def test_demand_weighted_falls_back_to_round_robin(self):
        # No demand signal at all: behave exactly like static-rr.
        system = build()
        daemon = RebalanceDaemon(system.sites["A"], RebalanceConfig(
            period=2.0, high_watermark=1.5, policy="demand-weighted"))
        daemon.start()
        destinations = set()
        for _ in range(4):
            system.submit("A", TransactionSpec(
                ops=(IncrementOp("x", 30),)))
            system.run_for(5.0)
        for channel in system.sites["A"].vm.outgoing.values():
            if channel.next_seq > 1:
                destinations.add(channel.dst)
        assert len(destinations) >= 2
        system.run_for(200.0)
        system.auditor.assert_ok()

    def test_pull_policy_refills_short_site(self):
        # B is far below its target; with the pull policy it requests
        # the deficit itself and a rich peer's ordinary Rds honor path
        # answers — no new message kinds involved.
        system = DvPSystem(SystemConfig(
            sites=["A", "B", "C"], seed=17, txn_timeout=10.0,
            link=LinkConfig(base_delay=1.0)))
        system.add_item("x", CounterDomain(), split={"A": 56, "B": 2,
                                                     "C": 2})
        daemons = install_rebalancing(system, RebalanceConfig(
            period=5.0, policy="pull", low_watermark=0.6))
        daemons["B"].set_target("x", 20)
        system.run_for(60.0)
        assert daemons["B"].pulls >= 1
        assert daemons["B"].shipments == 0  # pull never pushes
        assert system.sites["B"].fragments.value("x") >= 12
        system.run_for(100.0)
        system.auditor.assert_ok()

    def test_pull_skips_unreachable_peers(self):
        # A partitioned away from B: B's pulls must go to C only.
        system = DvPSystem(SystemConfig(
            sites=["A", "B", "C"], seed=17, txn_timeout=10.0,
            link=LinkConfig(base_delay=1.0)))
        system.add_item("x", CounterDomain(), split={"A": 30, "B": 0,
                                                     "C": 30})
        system.network.partition([["A"], ["B", "C"]])
        daemons = install_rebalancing(system, RebalanceConfig(
            period=5.0, policy="pull", low_watermark=0.6))
        daemons["B"].set_target("x", 10)
        system.run_for(40.0)
        assert daemons["B"].pulls >= 1
        assert system.sites["B"].fragments.value("x") > 0
        # Only C can have answered; A never even heard a request.
        assert system.sites["A"].requests_honored == 0
        system.network.heal()
        system.run_for(100.0)
        system.auditor.assert_ok()


class TestInstall:
    def test_installs_everywhere(self):
        system = build()
        daemons = install_rebalancing(system,
                                      RebalanceConfig(period=3.0))
        assert set(daemons) == {"A", "B", "C"}
        assert all(daemon.running for daemon in daemons.values())

    def test_rebalanced_system_reduces_demand_aborts(self):
        # A site that keeps receiving cancellations accumulates value;
        # rebalancing spreads it so other sites' sales stop aborting.
        system = build()
        install_rebalancing(system, RebalanceConfig(period=4.0,
                                                    high_watermark=1.2))
        results = []
        for step in range(12):
            system.sim.at(step * 5.0 + 0.1, lambda:
                          system.submit("A", TransactionSpec(
                              ops=(IncrementOp("x", 12),))))
            system.sim.at(step * 5.0 + 2.0, lambda:
                          system.submit("B", TransactionSpec(
                              ops=(DecrementOp("x", 15),)),
                              results.append))
        system.run_for(120.0)
        system.run_for(200.0)
        committed = sum(result.committed for result in results)
        assert committed >= len(results) // 2
        system.auditor.assert_ok()
