"""Smoke tests: every experiment module runs its quick preset and
produces a well-formed table. (The benchmarks assert the claim shapes;
these only guard importability and structural integrity, so the plain
test suite catches breakage without paying full experiment cost.)"""

import pytest

from repro.harness import experiments
from repro.metrics.tables import Table


@pytest.mark.parametrize("experiment_id", experiments.all_ids())
def test_quick_preset_produces_table(experiment_id):
    module = experiments.get(experiment_id)
    table = module.run(module.Params.quick())
    assert isinstance(table, Table)
    assert table.rows
    assert table.columns
    rendered = table.render()
    assert table.title in rendered


def test_registry_is_complete():
    assert experiments.all_ids() == [f"E{n}" for n in range(1, 17)]


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError):
        experiments.get("E99")


class TestE11TypedRefusals:
    """Regression for the bare ``except Exception: pass`` that used to
    wrap E11 arrivals: only the typed refusals (SiteDown,
    UnsupportedSpec) may be swallowed; programming errors in the
    routing path must propagate."""

    def test_programming_errors_propagate(self, monkeypatch):
        from repro.harness.experiments import e11_hybrid
        from repro.hybrid import HybridSystem

        def broken_submit(self, site, spec, on_done=None):
            raise TypeError("routing bug")

        monkeypatch.setattr(HybridSystem, "submit", broken_submit)
        with pytest.raises(TypeError, match="routing bug"):
            e11_hybrid._run_one(e11_hybrid.Params.quick(), "dvp")

    def test_typed_refusals_are_absorbed(self, monkeypatch):
        from repro.core.site import SiteDown
        from repro.harness.experiments import e11_hybrid
        from repro.hybrid import HybridSystem

        def down_submit(self, site, spec, on_done=None):
            raise SiteDown(site)

        monkeypatch.setattr(HybridSystem, "submit", down_submit)
        stats = e11_hybrid._run_one(e11_hybrid.Params.quick(), "dvp")
        # Every arrival was refused: submitted counts stay, commits 0.
        assert stats["phase1"]["commit"] == 0.0
