"""Smoke tests: every experiment module runs its quick preset and
produces a well-formed table. (The benchmarks assert the claim shapes;
these only guard importability and structural integrity, so the plain
test suite catches breakage without paying full experiment cost.)"""

import pytest

from repro.harness import experiments
from repro.metrics.tables import Table


@pytest.mark.parametrize("experiment_id", experiments.all_ids())
def test_quick_preset_produces_table(experiment_id):
    module = experiments.get(experiment_id)
    table = module.run(module.Params.quick())
    assert isinstance(table, Table)
    assert table.rows
    assert table.columns
    rendered = table.render()
    assert table.title in rendered


def test_registry_is_complete():
    assert experiments.all_ids() == [f"E{n}" for n in range(1, 15)]


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError):
        experiments.get("E99")
