"""Chaos coverage for the serving front-end: every oracle must hold
when arrivals flow through routed, bounded, admission-controlled
queues — sheds never enter the system (so the progress oracle counts
dispatches, not arrivals), slot leases reclaim crash-wiped
transactions, and the whole path stays deterministic and
worker-invariant on the sharded kernel."""

import pytest

from repro.chaos import ChaosConfig, FaultPlan, explore
from repro.chaos.runner import run_chaos
from repro.cli import build_parser
from repro.harness.chaos import config_from_args

#: router per acceptance seed — one exploration each, three routers.
ACCEPTANCE = [(7, "least-queue"), (19, "locality"), (23, "random")]


class TestExploreWithServing:
    @pytest.mark.parametrize("seed,router", ACCEPTANCE)
    def test_budget_200_green(self, seed, router):
        """The acceptance runs: full budget, serving on, every oracle."""
        report = explore(ChaosConfig(serving=router), budget=200,
                         master_seed=seed)
        assert report.ok, report.describe()

    def test_exploration_deterministic_with_serving(self):
        config = ChaosConfig(serving="least-queue")
        first = explore(config, budget=6, master_seed=11)
        second = explore(config, budget=6, master_seed=11)
        assert first.digest() == second.digest()

    def test_describe_names_the_serving(self):
        report = explore(ChaosConfig(serving="locality"), budget=1,
                         master_seed=3)
        assert "serving=locality" in report.describe().splitlines()[0]
        plain = explore(ChaosConfig(), budget=1, master_seed=3)
        assert "serving" not in plain.describe()


CRASH_PLAN = FaultPlan.from_dicts([
    {"at": 15.0, "kind": "crash", "site": "S1"},
    {"at": 35.0, "kind": "recover", "site": "S1"},
    {"at": 25.0, "kind": "crash", "site": "S3"},
])


class TestServingRunSemantics:
    def test_same_seed_and_plan_same_fingerprint(self):
        config = ChaosConfig(serving="least-queue")
        first = run_chaos(config, CRASH_PLAN, seed=42)
        second = run_chaos(config, CRASH_PLAN, seed=42)
        assert first.fingerprint == second.fingerprint
        assert not first.failed, first.failures

    def test_submitted_counts_dispatches_not_arrivals(self):
        """With a zero-depth bound every arrival is shed at the door:
        nothing enters the system, submitted must be 0 (not the
        arrival count), and the progress oracle still balances."""
        config = ChaosConfig(serving="least-queue",
                             serving_max_depth=0)
        result = run_chaos(config, FaultPlan.from_dicts([]), seed=9)
        assert not result.failed, result.failures
        assert result.submitted == 0
        assert len(result.system.results) == 0

    def test_dispatches_decide_under_an_open_door(self):
        config = ChaosConfig(serving="least-queue")
        result = run_chaos(config, FaultPlan.from_dicts([]), seed=9)
        assert not result.failed, result.failures
        assert result.submitted == config.txns
        assert len(result.system.results) == config.txns

    def test_crash_wipes_are_covered_by_leases(self):
        """Dispatched-then-wiped transactions never call back; the
        lease reclaims the slot and the progress oracle attributes the
        loss to the crash."""
        config = ChaosConfig(serving="least-queue")
        result = run_chaos(config, CRASH_PLAN, seed=12)
        assert not result.failed, result.failures
        undecided = result.submitted - len(result.system.results)
        assert undecided <= result.wiped_by_crash

    def test_worker_invariant_on_sharded_kernel(self):
        def fingerprint(workers):
            config = ChaosConfig(serving="locality", shards=2,
                                 shard_workers=workers,
                                 partitioner="hash", replicas=2)
            result = run_chaos(config, CRASH_PLAN, seed=21)
            assert not result.failed, result.failures
            return result.fingerprint

        assert fingerprint(1) == fingerprint(2)


class TestConfigPlumbing:
    def test_old_artifacts_load_without_serving_keys(self):
        data = ChaosConfig().to_dict()
        for key in ("serving", "serving_max_depth",
                    "serving_max_inflight", "serving_board_period"):
            del data[key]
        config = ChaosConfig.from_dict(data)
        assert config.serving is None

    def test_cli_flags_reach_the_config(self):
        parser = build_parser()
        args = parser.parse_args([
            "chaos", "--serving", "locality", "--serving-depth", "5",
            "--serving-inflight", "3"])
        config = config_from_args(args)
        assert config.serving == "locality"
        assert config.serving_max_depth == 5
        assert config.serving_max_inflight == 3

    def test_default_is_the_seed_path(self):
        parser = build_parser()
        args = parser.parse_args(["chaos"])
        assert config_from_args(args).serving is None
