"""The structured observability layer: TraceBus, typed events, JSONL
export, metrics registry, timeline rendering, chaos trace tails."""

import io
import json
import pathlib

import pytest

from repro.chaos import TRACE_TAIL_EVENTS, ReproArtifact
from repro.core.domain import CounterDomain
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    TransactionSpec,
)
from repro.net.link import LinkConfig
from repro.obs import (
    KernelStep,
    MetricsRegistry,
    TraceBus,
    TraceFilter,
    VmCreate,
    dumps_jsonl,
    event_from_dict,
    event_to_json,
    read_jsonl,
    render_timeline,
)
from repro.sim.kernel import Simulator

REPRO = (pathlib.Path(__file__).parent / "repros" /
         "chaos_auditor-serial_crash_seed16220008651848166696_1act.json")


def build_system(**kwargs):
    kwargs.setdefault("sites", ["A", "B", "C"])
    kwargs.setdefault("txn_timeout", 10.0)
    kwargs.setdefault("retransmit_period", 2.0)
    kwargs.setdefault("link", LinkConfig(base_delay=1.0))
    system = DvPSystem(SystemConfig(seed=11, **kwargs))
    system.add_item("x", CounterDomain(), total=90)
    return system


class TestTraceBus:
    def test_disabled_by_default_and_emits_nothing(self):
        system = build_system()
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 40),)))
        system.run_for(30.0)
        assert not system.sim.obs.enabled
        assert system.sim.obs.emitted == 0
        assert system.sim.obs.events() == []

    def test_enabled_captures_protocol_lifecycle(self):
        system = build_system()
        system.sim.obs.enable()
        results = []
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 40),)),
                      results.append)
        system.run_for(30.0)
        assert results and results[0].committed
        kinds = {event.kind for event in system.sim.obs.events()}
        # The decrement needs remote value: every family must appear.
        assert {"txn.submit", "txn.locks-granted", "txn.redistribute",
                "txn.commit", "vm.create", "vm.transmit", "vm.accept",
                "vm.ack", "net.send", "net.deliver",
                "site.log-force"} <= kinds

    def test_ring_truncation_keeps_most_recent(self):
        bus = TraceBus()
        bus.enable(ring_limit=3)
        for index in range(10):
            bus.emit(KernelStep(t=float(index), label=f"e{index}"))
        assert bus.emitted == 10
        assert bus.truncated == 7
        assert [event.label for event in bus.events()] == ["e7", "e8", "e9"]
        assert [event.label for event in bus.tail(2)] == ["e8", "e9"]
        assert bus.tail(0) == []

    def test_ring_limit_validated(self):
        with pytest.raises(ValueError):
            TraceBus().enable(ring_limit=0)

    def test_sinks_see_truncated_events(self):
        bus = TraceBus()
        seen = []
        bus.add_sink(seen.append)
        bus.enable(ring_limit=2)
        for index in range(5):
            bus.emit(KernelStep(t=float(index), label=f"e{index}"))
        assert len(seen) == 5  # the stream is complete despite the ring
        bus.remove_sink(seen.append)

    def test_clear_resets_counts(self):
        bus = TraceBus()
        bus.enable()
        bus.emit(KernelStep(t=0.0, label="e"))
        bus.clear()
        assert bus.emitted == 0
        assert bus.events() == []

    def test_event_order_matches_trace_fingerprint_order(self):
        """KernelStep events and the kernel's fingerprint trace are the
        same sequence: the structured trace is a faithful, typed view
        of exactly what the fingerprint hashes."""
        def run(collect_obs: bool):
            system = build_system()
            system.sim.enable_trace()
            if collect_obs:
                system.sim.obs.enable(kernel_steps=True)
            system.submit("A", TransactionSpec(
                ops=(DecrementOp("x", 40),)))
            system.run_for(30.0)
            return system

        traced = run(collect_obs=True)
        steps = [(event.t, event.label)
                 for event in traced.sim.obs.events()
                 if isinstance(event, KernelStep)]
        assert steps == traced.sim.trace
        # And observation is passive: same fingerprint without the bus.
        untraced = run(collect_obs=False)
        assert (traced.sim.trace_fingerprint()
                == untraced.sim.trace_fingerprint())


class TestJsonl:
    def test_round_trip(self):
        bus = TraceBus()
        bus.enable()
        system = build_system()
        system.sim.obs.enable()
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 40),)))
        system.run_for(30.0)
        events = system.sim.obs.events()
        assert events
        text = dumps_jsonl(events)
        parsed = list(read_jsonl(io.StringIO(text)))
        assert parsed == events

    def test_canonical_lines_are_stable(self):
        event = VmCreate(t=1.5, site="A", dst="B", item="x", seq=3,
                         amount=7, vm_kind="transfer", txn="A#1")
        line = event_to_json(event)
        assert line == ('{"amount":7,"dst":"B","item":"x",'
                        '"kind":"vm.create","seq":3,"site":"A",'
                        '"t":1.5,"txn":"A#1","vm_kind":"transfer"}')
        assert event_from_dict(json.loads(line)) == event

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            event_from_dict({"kind": "no.such.event", "t": 0.0})


class TestMetricsRegistry:
    def test_counters_memoized_by_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("vm.created", site="A")
        assert registry.counter("vm.created", site="A") is a
        b = registry.counter("vm.created", site="B")
        assert b is not a
        a.inc()
        a.inc(2)
        assert a.value == 3
        assert registry.total("vm.created") == 3

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        h = registry.histogram("vm.delivery", src="A", dst="B")
        for value in (1.0, 2.0, 3.0):
            h.observe(value)
        summary = h.summary()
        assert h.count == 3
        assert summary.mean == 2.0

    def test_marks_pair_up_across_components(self):
        registry = MetricsRegistry()
        registry.mark(("vm", "A", "B", 1), 5.0)
        assert registry.elapsed_since_mark(("vm", "A", "B", 1), 8.0) == 3.0
        # consumed: a second take finds nothing
        assert registry.elapsed_since_mark(("vm", "A", "B", 1), 9.0) is None

    def test_system_metrics_flow_end_to_end(self):
        system = build_system()
        results = []
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 40),)),
                      results.append)
        system.run_for(30.0)
        metrics = system.sim.metrics
        assert results[0].committed
        assert metrics.total("vm.created") >= 1
        assert metrics.total("vm.accepted") == metrics.total("vm.created")
        assert metrics.total("net.sent") > 0
        deliveries = metrics.histograms("vm.delivery")
        # One delivery-latency sample per accepted Vm (channels that
        # never delivered keep empty histograms — that's fine).
        assert sum(h.count for h in deliveries) == \
            metrics.total("vm.accepted")
        decisions = [h for h in metrics.histograms("txn.decision")
                     if dict(h.labels)["outcome"] == "committed"]
        assert sum(h.count for h in decisions) == 1

    def test_legacy_counter_views_still_read(self):
        system = build_system()
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 40),)))
        system.run_for(30.0)
        site = system.sites["B"]
        assert site.vm.acks_sent >= 0
        assert site.vm.accepts == system.sim.metrics.counter(
            "vm.accepted", site="B").value
        assert system.network.dropped_partition == 0
        assert system.network.dropped_loss == 0

    def test_counters_survive_recovery_rebuild(self):
        """Recovery replaces the VmManager object; the registry-backed
        per-site counters must keep their cumulative values."""
        system = build_system()
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 40),)))
        system.run_for(30.0)
        accepted_before = system.sites["A"].vm.accepts
        assert accepted_before > 0
        system.crash("A")
        system.recover("A")
        assert system.sites["A"].vm.accepts == accepted_before


class TestTimeline:
    def make_events(self):
        system = build_system()
        system.sim.obs.enable()
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 40),)))
        system.submit("B", TransactionSpec(ops=(IncrementOp("x", 3),)))
        system.run_for(30.0)
        return system.sim.obs.events()

    def test_filters_are_conjunctive(self):
        events = self.make_events()
        vm_only = list(TraceFilter(kind="vm.").apply(events))
        assert vm_only and all(e.kind.startswith("vm.") for e in vm_only)
        site_a = list(TraceFilter(site="A").apply(events))
        for event in site_a:
            data = event.to_dict()
            assert "A" in (data.get("site"), data.get("src"),
                           data.get("dst"))
        both = list(TraceFilter(site="A", kind="vm.").apply(events))
        assert set(both) <= set(vm_only) & set(site_a)

    def test_txn_filter_matches_id_and_label(self):
        events = self.make_events()
        txn = list(TraceFilter(txn="A#1").apply(events))
        assert any(event.kind == "txn.submit" for event in txn)

    def test_render_is_deterministic_and_aligned(self):
        events = self.make_events()
        first = render_timeline(events, title="t")
        second = render_timeline(self.make_events(), title="t")
        assert first == second
        lines = first.splitlines()
        assert lines[0] == "t"
        assert lines[-1] == f"({len(events)} events)"

    def test_render_empty(self):
        assert "(no events)" in render_timeline([], title="t")


class TestChaosTraceTail:
    def test_committed_artifact_embeds_tail(self):
        artifact = ReproArtifact.load(REPRO)
        assert len(artifact.trace_tail) == TRACE_TAIL_EVENTS
        # every line is canonical JSON for a known event kind
        for line in artifact.trace_tail:
            event = event_from_dict(json.loads(line))
            assert event_to_json(event) == line

    def test_replay_tail_byte_identical(self):
        """The embedded tail reproduces byte-for-byte on replay — the
        cross-process determinism `repro trace` relies on."""
        artifact = ReproArtifact.load(REPRO)
        result = artifact.replay(trace_limit=TRACE_TAIL_EVENTS)
        assert result.trace_tail == artifact.trace_tail
        again = artifact.replay(trace_limit=TRACE_TAIL_EVENTS)
        assert again.trace_tail == result.trace_tail
        assert again.fingerprint == result.fingerprint

    def test_artifact_without_tail_still_loads(self):
        artifact = ReproArtifact.load(REPRO)
        data = artifact.to_dict()
        del data["trace_tail"]  # a pre-PR3 artifact
        loaded = ReproArtifact.from_dict(data)
        assert loaded.trace_tail == []
        assert loaded.plan.to_dicts() == artifact.plan.to_dicts()


class TestKernelIntegration:
    def test_kernel_steps_off_by_default_when_enabled(self):
        sim = Simulator()
        sim.obs.enable()
        sim.after(1.0, lambda: None, label="x")
        sim.run()
        assert sim.obs.events() == []  # kernel steps are opt-in

    def test_kernel_steps_cover_run_and_run_until(self):
        sim = Simulator()
        sim.obs.enable(kernel_steps=True)
        sim.after(1.0, lambda: None, label="a")
        sim.after(2.0, lambda: None, label="b")
        sim.run_until(1.5)
        sim.run()
        assert [event.label for event in sim.obs.events()] == ["a", "b"]
