"""Unit tests for the stable log, page store and checkpoint policy."""

import pytest

from repro.storage.checkpoint import CheckpointPolicy
from repro.storage.log import StableLog
from repro.storage.pages import PageStore
from repro.storage.records import (
    AppliedRecord,
    CheckpointRecord,
    CommitRecord,
    SetFragment,
    VmAcceptRecord,
    VmCreateRecord,
    VmEntry,
)


class TestStableLog:
    def test_append_returns_lsns_in_order(self):
        log = StableLog("A")
        assert [log.append(f"r{i}") for i in range(3)] == [0, 1, 2]

    def test_read(self):
        log = StableLog("A")
        log.append("alpha")
        assert log.read(0) == "alpha"

    def test_scan_from_lsn(self):
        log = StableLog("A")
        for index in range(5):
            log.append(index)
        assert [env.record for env in log.scan(3)] == [3, 4]
        assert [env.lsn for env in log.scan(3)] == [3, 4]

    def test_scan_backwards(self):
        log = StableLog("A")
        for index in range(3):
            log.append(index)
        assert [env.record for env in log.scan_backwards()] == [2, 1, 0]

    def test_last_matching(self):
        log = StableLog("A")
        log.append(("ckpt", 1))
        log.append(("other",))
        log.append(("ckpt", 2))
        log.append(("other",))
        found = log.last_matching(lambda r: r[0] == "ckpt")
        assert found is not None
        assert found.record == ("ckpt", 2)
        assert found.lsn == 2

    def test_last_matching_none(self):
        assert StableLog("A").last_matching(lambda r: True) is None

    def test_forces_counted(self):
        log = StableLog("A")
        log.append("x")
        log.append("y")
        assert log.forces == 2

    def test_next_lsn(self):
        log = StableLog("A")
        assert log.next_lsn == 0
        log.append("x")
        assert log.next_lsn == 1


class TestPageStore:
    def test_create_and_read(self):
        pages = PageStore("A")
        pages.create("item", 10)
        assert pages.read("item") == 10
        assert pages.page_lsn("item") == -1

    def test_duplicate_create_rejected(self):
        pages = PageStore("A")
        pages.create("item", 10)
        with pytest.raises(ValueError):
            pages.create("item", 20)

    def test_write_stamps_lsn(self):
        pages = PageStore("A")
        pages.create("item", 10)
        pages.write("item", 7, lsn=4)
        assert pages.read("item") == 7
        assert pages.page_lsn("item") == 4

    def test_write_if_newer_applies_once(self):
        pages = PageStore("A")
        pages.create("item", 10)
        assert pages.write_if_newer("item", 7, lsn=4)
        assert not pages.write_if_newer("item", 99, lsn=4)
        assert not pages.write_if_newer("item", 99, lsn=3)
        assert pages.read("item") == 7

    def test_write_if_newer_accepts_later_lsn(self):
        pages = PageStore("A")
        pages.create("item", 10)
        pages.write_if_newer("item", 7, lsn=4)
        assert pages.write_if_newer("item", 8, lsn=5)
        assert pages.read("item") == 8

    def test_contains_and_items(self):
        pages = PageStore("A")
        pages.create("x", 1)
        assert "x" in pages
        assert "y" not in pages
        assert dict(pages.items()) == {"x": 1}

    def test_write_counter(self):
        pages = PageStore("A")
        pages.create("x", 1)
        pages.write("x", 2, 0)
        pages.write_if_newer("x", 3, 1)
        pages.write_if_newer("x", 4, 1)  # skipped
        assert pages.writes == 2


class TestCheckpointPolicy:
    def test_disabled_by_default(self):
        assert not CheckpointPolicy().due(10_000)

    def test_due_at_interval(self):
        policy = CheckpointPolicy(interval_records=5)
        assert not policy.due(4)
        assert policy.due(5)
        assert policy.due(6)

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            CheckpointPolicy(interval_records=-1)


class TestRecords:
    def test_vm_create_record_shape(self):
        entry = VmEntry(dst="B", item="x", amount=5, channel_seq=1)
        record = VmCreateRecord(
            txn_id="t1", actions=(SetFragment("x", 5, ts=9),),
            messages=(entry,))
        assert record.actions[0].ts == 9
        assert record.messages[0].dst == "B"

    def test_records_are_frozen(self):
        record = CommitRecord("t1", ())
        with pytest.raises(Exception):
            record.txn_id = "t2"  # type: ignore[misc]

    def test_vm_entry_defaults(self):
        entry = VmEntry(dst="B", item="x", amount=1, channel_seq=3)
        assert entry.kind == "transfer"
        assert entry.txn_id == ""

    def test_accept_record_identifies_channel(self):
        record = VmAcceptRecord(src="A", channel_seq=7)
        assert (record.src, record.channel_seq) == ("A", 7)

    def test_applied_record(self):
        assert AppliedRecord(applied_lsn=12).applied_lsn == 12

    def test_checkpoint_record_defaults(self):
        record = CheckpointRecord()
        assert record.fragments == ()
        assert record.incoming_cumulative == ()
