"""Tests for the parallel cached grid evaluator.

Logic tests run in-process against a stub experiment module (fast);
one integration test fans a real experiment's quick grid over worker
processes and checks the rendered table matches the sequential path.
"""

import json

import pytest

from repro.harness import experiments
from repro.harness.experiments import e03_vm_delivery as e03
from repro.harness.experiments import e05_recovery as e05
from repro.harness.parallel import (
    CACHE_VERSION,
    GridEvaluator,
    ResultCache,
    cache_key,
    canonical,
    evaluate_cells,
)


class TestCanonical:
    def test_dataclass_carries_class_name(self):
        rendered = canonical(e03.Params.quick())
        assert rendered["__dataclass__"] == "Params"
        assert rendered["loss_rates"] == [0.0, 0.5]

    def test_tuples_collapse_to_lists(self):
        assert canonical({"window": (1.0, 2.0)}) == {"window": [1.0, 2.0]}

    def test_nested_structures(self):
        value = {"policies": [("ask-few", {"fanout": 1})]}
        assert canonical(value) == {"policies": [["ask-few",
                                                 {"fanout": 1}]]}

    def test_exotic_values_fall_back_to_repr(self):
        assert isinstance(canonical(object()), str)

    def test_is_json_serializable(self):
        json.dumps(canonical({"params": e05.Params.quick(), "k": None}))


class TestCacheKey:
    def test_stable_across_equal_inputs(self):
        first = cache_key("E3", "_run_one",
                          {"params": e03.Params.quick(), "loss": 0.5})
        second = cache_key("E3", "_run_one",
                           {"params": e03.Params.quick(), "loss": 0.5})
        assert first == second

    def test_sensitive_to_params_fields(self):
        changed = e03.Params.quick()
        changed.seed += 1
        assert (cache_key("E3", "_run_one",
                          {"params": e03.Params.quick(), "loss": 0.5})
                != cache_key("E3", "_run_one",
                             {"params": changed, "loss": 0.5}))

    def test_sensitive_to_experiment_and_fn(self):
        kwargs = {"loss": 0.5}
        assert cache_key("E3", "_run_one", kwargs) \
            != cache_key("E4", "_run_one", kwargs)
        assert cache_key("E3", "_run_one", kwargs) \
            != cache_key("E3", "_other", kwargs)


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("ET", "_cell", {"value": 1})
        cache.put(key, "ET", "_cell", {"answer": 42})
        assert cache.get(key) == {"answer": 42}

    def test_miss_when_absent(self, tmp_path):
        cache = ResultCache(tmp_path)
        missing = cache.get("0" * 64)
        assert missing != {"answer": 42}
        assert missing is not None  # sentinel, not a value

    def test_version_mismatch_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("ET", "_cell", {"value": 2})
        cache.put(key, "ET", "_cell", {"answer": 1})
        path = cache._path(key)
        payload = json.loads(path.read_text())
        payload["version"] = CACHE_VERSION + 1
        path.write_text(json.dumps(payload))
        assert cache.get(key) != {"answer": 1}

    def test_corrupt_entry_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("ET", "_cell", {"value": 3})
        cache.put(key, "ET", "_cell", {"answer": 1})
        cache._path(key).write_text("not json {")
        assert cache.get(key) != {"answer": 1}


class _StubModule:
    """Stands in for an experiment module; counts cell executions."""

    calls: list = []

    @staticmethod
    def _cell(value):
        _StubModule.calls.append(value)
        return {"doubled": value * 2, "pair": (value, value)}


@pytest.fixture
def stub_experiment(monkeypatch):
    _StubModule.calls = []
    real_get = experiments.get
    monkeypatch.setattr(
        experiments, "get",
        lambda experiment_id: (_StubModule if experiment_id == "ET"
                               else real_get(experiment_id)))
    return _StubModule


class TestGridEvaluator:
    def test_rejects_zero_jobs(self):
        with pytest.raises(ValueError):
            GridEvaluator(jobs=0)

    def test_computes_then_replays_from_cache(self, tmp_path,
                                              stub_experiment):
        grid = [("_cell", {"value": 1}), ("_cell", {"value": 2})]
        evaluator = GridEvaluator(jobs=1, cache=ResultCache(tmp_path))
        first = evaluator("ET", grid)
        # Computed results are JSON round-tripped: tuples become lists.
        assert first == [{"doubled": 2, "pair": [1, 1]},
                         {"doubled": 4, "pair": [2, 2]}]
        assert evaluator.computed == 2 and evaluator.cache_hits == 0

        second = evaluator("ET", grid)
        assert second == first
        assert evaluator.cache_hits == 2
        assert stub_experiment.calls == [1, 2]  # nothing recomputed

    def test_cache_shared_across_evaluators(self, tmp_path,
                                            stub_experiment):
        grid = [("_cell", {"value": 7})]
        GridEvaluator(jobs=1, cache=ResultCache(tmp_path))("ET", grid)
        warm = GridEvaluator(jobs=1, cache=ResultCache(tmp_path))
        warm("ET", grid)
        assert warm.cache_hits == 1 and warm.computed == 0

    def test_no_cache_recomputes(self, stub_experiment):
        grid = [("_cell", {"value": 5})]
        evaluator = GridEvaluator(jobs=1, cache=None)
        evaluator("ET", grid)
        evaluator("ET", grid)
        assert stub_experiment.calls == [5, 5]

    def test_partial_hits_only_compute_misses(self, tmp_path,
                                              stub_experiment):
        cache = ResultCache(tmp_path)
        GridEvaluator(jobs=1, cache=cache)("ET", [("_cell", {"value": 1})])
        evaluator = GridEvaluator(jobs=1, cache=cache)
        results = evaluator("ET", [("_cell", {"value": 1}),
                                   ("_cell", {"value": 9})])
        assert results[0]["doubled"] == 2 and results[1]["doubled"] == 18
        assert evaluator.cache_hits == 1 and evaluator.computed == 1
        assert stub_experiment.calls == [1, 9]


class TestEvaluateCells:
    def test_none_falls_back_to_direct_calls(self, stub_experiment):
        results = evaluate_cells("ET", [("_cell", {"value": 4})], None)
        # Direct path: no JSON round trip, tuples survive.
        assert results == [{"doubled": 8, "pair": (4, 4)}]

    def test_custom_evaluate_receives_grid(self):
        seen = {}

        def evaluate(experiment, grid):
            seen["experiment"], seen["grid"] = experiment, grid
            return ["sentinel"] * len(grid)

        grid = [("_cell", {"value": 1})]
        assert evaluate_cells("EX", grid, evaluate) == ["sentinel"]
        assert seen == {"experiment": "EX", "grid": grid}


class TestExperimentGrids:
    def test_every_module_exports_the_grid_protocol(self):
        for experiment_id in experiments.all_ids():
            module = experiments.get(experiment_id)
            assert module.EXPERIMENT == experiment_id
            grid = module.cells(module.Params.quick())
            assert grid, experiment_id
            for fn, kwargs in grid:
                assert callable(getattr(module, fn)), (experiment_id, fn)
                assert isinstance(kwargs, dict)

    def test_parallel_run_matches_sequential(self, tmp_path):
        params = e05.Params.quick()
        sequential = e05.run(params).render()
        evaluator = GridEvaluator(jobs=2, cache=ResultCache(tmp_path))
        parallel = e05.run(params, evaluate=evaluator).render()
        assert parallel == sequential
        assert evaluator.computed == len(e05.cells(params))

        warm = GridEvaluator(jobs=2, cache=ResultCache(tmp_path))
        replay = e05.run(params, evaluate=warm).render()
        assert replay == sequential
        assert warm.cache_hits == len(e05.cells(params))
        assert warm.computed == 0
