"""Property test: the incremental conservation books never diverge
from a full scan, whatever the failure schedule.

The failure schedules come from the chaos engine (:mod:`repro.chaos`):
every batch explores ``SEEDS_PER_BATCH`` grammar-sampled fault plans —
crashes, recoveries, partitions, directed link loss/duplication/reorder
windows, clock-skew timer fires — and judges each run against all three
oracles. The auditor's ``verify_full()`` cross-check (incremental books
vs brute-force scan) runs mid-flight at fixed horizon fractions and
again at quiescence inside every run. 20 batches × 11 plans keeps the
220 randomized executions the optimization was validated against, now
with wider fault coverage than the bespoke generator this replaces.
"""

from __future__ import annotations

import pytest

from repro.chaos import ChaosConfig, explore
from repro.core.domain import CounterDomain
from repro.core.invariants import IncrementalDivergence
from repro.core.system import DvPSystem, SystemConfig

SEEDS_PER_BATCH = 11
BATCHES = 20  # 220 randomized runs in all


def _batch_config(batch: int) -> ChaosConfig:
    """Deterministic per-batch variety in system shape and timing."""
    return ChaosConfig(
        sites=3 + batch % 3,
        items=1 + batch % 2,
        total=60 + 10 * (batch % 5),
        txns=12 + batch % 9,
        txn_timeout=(6.0, 10.0)[batch % 2],
        checkpoint_interval=(3, 6)[batch % 2])


@pytest.mark.parametrize("batch", range(BATCHES))
def test_incremental_matches_scan_under_chaos(batch):
    report = explore(_batch_config(batch), budget=SEEDS_PER_BATCH,
                     master_seed=batch)
    assert report.runs == SEEDS_PER_BATCH
    assert report.ok, (
        f"batch {batch}: {len(report.failures)} failing plan(s); "
        f"first: {report.failures[0].summary} "
        f"{report.failures[0].failures}")


class TestDivergenceDetection:
    """verify_full must actually notice books that have gone stale."""

    def _system(self) -> DvPSystem:
        system = DvPSystem(SystemConfig(sites=["A", "B"], seed=1))
        system.add_item("item0", CounterDomain(), total=40)
        return system

    def test_untracked_page_write_is_caught(self):
        system = self._system()
        store = system.sites["A"].fragments
        # Mutate the stable page behind the observer's back.
        store.pages.write("item0", store.pages.read("item0") + 5, 999)
        with pytest.raises(IncrementalDivergence):
            system.auditor.verify_full()

    def test_corrupted_live_book_is_caught(self):
        system = self._system()
        system.auditor._live_total["item0"] = 7
        with pytest.raises(IncrementalDivergence):
            system.auditor.verify_full()

    def test_clean_system_verifies(self):
        system = self._system()
        reports = system.auditor.verify_full()
        assert all(report.ok for report in reports)
        assert system.auditor.live_vm_entries() == 0
