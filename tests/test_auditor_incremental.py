"""Property test: the incremental conservation books never diverge
from a full scan, whatever the failure schedule.

Each randomized run drives a small system through lossy links, message
duplication, crashes, recoveries, and a partition window, cross-checking
``verify_full()`` (incremental vs brute-force scan) at several instants
mid-run and again after settling. 220 seeds × mid-run checks gives well
over the two hundred randomized executions the optimization was
validated against.
"""

from __future__ import annotations

import random

import pytest

from repro.core.domain import CounterDomain
from repro.core.invariants import IncrementalDivergence
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    ReadLocalOp,
    TransactionSpec,
    TransferOp,
)
from repro.net.link import LinkConfig

SEEDS_PER_BATCH = 11
BATCHES = 20  # 220 randomized runs in all


def _chaos_run(seed: int) -> None:
    """One randomized run; raises on divergence or violation."""
    rng = random.Random(seed)
    sites = [f"S{index}" for index in range(rng.randint(3, 5))]
    system = DvPSystem(SystemConfig(
        sites=sites, seed=seed,
        txn_timeout=rng.choice([6.0, 10.0]),
        retransmit_period=3.0,
        checkpoint_interval=rng.choice([3, 6]),
        link=LinkConfig(base_delay=1.0, jitter=rng.uniform(0.0, 2.0),
                        loss_probability=rng.choice([0.0, 0.2, 0.4]),
                        duplicate_probability=0.1)))
    items: dict[str, int] = {}
    for index in range(rng.randint(1, 2)):
        name = f"item{index}"
        items[name] = rng.randint(30, 150)
        system.add_item(name, CounterDomain(), total=items[name])

    duration = 80.0
    # Arrivals: decrements sized to overflow local quotas (forcing Vm
    # traffic), plus increments, transfers, and local reads.
    for _ in range(rng.randint(12, 28)):
        site = rng.choice(sites)
        item = rng.choice(list(items))
        roll = rng.random()
        if roll < 0.55:
            op = DecrementOp(item, rng.randint(1, max(2, items[item] // 2)))
        elif roll < 0.75:
            op = IncrementOp(item, rng.randint(1, 10))
        elif roll < 0.9 and len(items) > 1:
            other = rng.choice([name for name in items if name != item])
            op = TransferOp(item, other, rng.randint(1, 5))
        else:
            op = ReadLocalOp(item)
        def arrive(s=site, o=op):
            if system.sites[s].alive:  # arrivals at a dead site vanish
                system.submit(s, TransactionSpec(ops=(o,), label="fuzz"))

        system.sim.at(rng.uniform(0.5, duration), arrive)

    # Failure schedule: up to two crash/recover pairs...
    for _ in range(rng.randint(0, 2)):
        victim = rng.choice(sites)
        down_at = rng.uniform(5.0, duration - 20.0)
        up_at = down_at + rng.uniform(5.0, 25.0)

        def crash(name=victim):
            if system.sites[name].alive:
                system.crash(name)

        def recover(name=victim):
            if not system.sites[name].alive:
                system.recover(name)

        system.sim.at(down_at, crash, label="fuzz-crash")
        system.sim.at(up_at, recover, label="fuzz-recover")
    # ...and one partition window over a random split.
    if rng.random() < 0.7 and len(sites) > 2:
        shuffled = sites[:]
        rng.shuffle(shuffled)
        cut = rng.randint(1, len(shuffled) - 1)
        split = [shuffled[:cut], shuffled[cut:]]
        start = rng.uniform(5.0, duration - 20.0)
        system.sim.at(start, lambda: system.network.partition(split))
        system.sim.at(start + rng.uniform(5.0, 25.0),
                      system.network.heal)

    failures: list[str] = []

    def check(label: str):
        def probe() -> None:
            try:
                reports = system.auditor.verify_full()
            except IncrementalDivergence as exc:
                failures.append(f"seed {seed} @{label}: {exc}")
                return
            for report in reports:
                if not report.ok:
                    failures.append(f"seed {seed} @{label}: {report}")
        return probe

    for index in range(5):
        system.sim.at(rng.uniform(1.0, duration), check(f"mid{index}"),
                      label="fuzz-audit")

    system.run_until(duration)
    # Settle: heal, revive, let retransmissions land, then final check.
    system.network.heal()
    for site in system.sites.values():
        if not site.alive:
            site.recover()
    system.run_for(system.config.txn_timeout + 150.0)
    check("final")()
    assert not failures, failures[0]
    system.auditor.assert_ok()


@pytest.mark.parametrize("batch", range(BATCHES))
def test_incremental_matches_scan_under_chaos(batch):
    for seed in range(batch * SEEDS_PER_BATCH,
                      (batch + 1) * SEEDS_PER_BATCH):
        _chaos_run(seed)


class TestDivergenceDetection:
    """verify_full must actually notice books that have gone stale."""

    def _system(self) -> DvPSystem:
        system = DvPSystem(SystemConfig(sites=["A", "B"], seed=1))
        system.add_item("item0", CounterDomain(), total=40)
        return system

    def test_untracked_page_write_is_caught(self):
        system = self._system()
        store = system.sites["A"].fragments
        # Mutate the stable page behind the observer's back.
        store.pages.write("item0", store.pages.read("item0") + 5, 999)
        with pytest.raises(IncrementalDivergence):
            system.auditor.verify_full()

    def test_corrupted_live_book_is_caught(self):
        system = self._system()
        system.auditor._live_total["item0"] = 7
        with pytest.raises(IncrementalDivergence):
            system.auditor.verify_full()

    def test_clean_system_verifies(self):
        system = self._system()
        reports = system.auditor.verify_full()
        assert all(report.ok for report in reports)
        assert system.auditor.live_vm_entries() == 0
