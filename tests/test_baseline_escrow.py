"""Tests for the central-counter baseline (escrow and lock modes)."""

import pytest

from repro.baselines.common import BaselineConfig
from repro.baselines.escrow import CentralCounterSystem
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    ReadFullOp,
    TransactionSpec,
    UnsupportedSpec,
)
from repro.net.link import LinkConfig


def build(mode="escrow", timeout=20.0):
    system = CentralCounterSystem(
        ["A", "B", "C"], central="A", mode=mode, seed=5,
        link=LinkConfig(base_delay=1.0),
        config=BaselineConfig(txn_timeout=timeout, retry_period=3.0))
    system.add_item("hot", 100)
    return system


def run_one(system, origin, spec, duration=60.0):
    results = []
    system.submit(origin, spec, results.append)
    system.run_for(duration)
    assert results
    return results[0]


class TestConstruction:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            CentralCounterSystem(["A"], central="A", mode="weird")

    def test_central_must_be_a_site(self):
        with pytest.raises(ValueError):
            CentralCounterSystem(["A"], central="Z")

    def test_only_single_counter_ops(self):
        # Refusal must be the typed UnsupportedSpec so workload
        # drivers can tell "spec shape refused" from real errors.
        system = build()
        with pytest.raises(UnsupportedSpec):
            system.submit("A", TransactionSpec(
                ops=(ReadFullOp("hot"),)))


class TestEscrowMode:
    def test_remote_decrement_commits(self):
        system = build()
        result = run_one(system, "B", TransactionSpec(
            ops=(DecrementOp("hot", 10),), work=2.0))
        assert result.committed
        assert system.value("hot") == 90

    def test_local_client_cheaper_than_remote(self):
        system = build()
        local = run_one(system, "A", TransactionSpec(
            ops=(DecrementOp("hot", 1),), work=2.0))
        remote = run_one(system, "B", TransactionSpec(
            ops=(DecrementOp("hot", 1),), work=2.0))
        assert local.latency < remote.latency

    def test_concurrent_escrows_overlap(self):
        system = build()
        results = []
        for origin in ("A", "B", "C"):
            system.submit(origin, TransactionSpec(
                ops=(DecrementOp("hot", 10),), work=5.0), results.append)
        system.run_for(60.0)
        assert len(results) == 3
        assert all(result.committed for result in results)
        # Overlapping: all done well before 3 serialized work periods.
        assert max(result.latency for result in results) < 12.0
        assert system.value("hot") == 70

    def test_escrow_bounds_respected_under_concurrency(self):
        # Two concurrent decrements of 60 against 100: the second must
        # be refused even though the first has not committed yet.
        system = build()
        results = []
        for origin in ("B", "C"):
            system.submit(origin, TransactionSpec(
                ops=(DecrementOp("hot", 60),), work=10.0), results.append)
        system.run_for(120.0)
        outcomes = sorted(result.committed for result in results)
        assert outcomes == [False, True]
        assert system.value("hot") == 40

    def test_increments_always_granted(self):
        system = build()
        result = run_one(system, "C", TransactionSpec(
            ops=(IncrementOp("hot", 25),)))
        assert result.committed
        assert system.value("hot") == 125

    def test_timeout_when_central_unreachable(self):
        system = build()
        system.network.partition([["A"], ["B", "C"]])
        result = run_one(system, "B", TransactionSpec(
            ops=(DecrementOp("hot", 1),)))
        assert not result.committed
        assert result.reason == "timeout"

    def test_late_grant_is_abandoned(self):
        # The grant arrives after the client timed out: the escrow must
        # be handed back, not leaked.
        system = build(timeout=1.5)  # shorter than the 2-hop round trip
        result = run_one(system, "B", TransactionSpec(
            ops=(DecrementOp("hot", 10),)))
        assert not result.committed
        system.run_for(60.0)
        item = system._items["hot"]
        assert not item.journal  # no leaked escrow
        assert system.value("hot") == 100


class TestLockMode:
    def test_serialized_by_exclusive_lock(self):
        system = build(mode="lock")
        results = []
        for origin in ("A", "B", "C"):
            system.submit(origin, TransactionSpec(
                ops=(DecrementOp("hot", 10),), work=5.0), results.append)
        system.run_for(120.0)
        committed = [result for result in results if result.committed]
        assert len(committed) == 3
        # Fully serialized: the slowest took at least ~2 work periods.
        assert max(result.latency for result in committed) >= 10.0

    def test_queue_is_fifo(self):
        system = build(mode="lock")
        order = []
        for origin in ("B", "C"):
            system.submit(origin, TransactionSpec(
                ops=(DecrementOp("hot", 1),), work=3.0),
                lambda result: order.append(result.site))
        system.run_for(60.0)
        assert order == ["B", "C"]

    def test_insufficient_refused_at_grant_time(self):
        system = build(mode="lock")
        result = run_one(system, "B", TransactionSpec(
            ops=(DecrementOp("hot", 500),)))
        assert not result.committed
        assert result.reason == "insufficient"

    def test_queued_client_timeout_releases_queue_slot(self):
        system = build(mode="lock", timeout=4.0)
        results = []
        system.submit("B", TransactionSpec(
            ops=(DecrementOp("hot", 1),), work=20.0), results.append)
        system.submit("C", TransactionSpec(
            ops=(DecrementOp("hot", 1),)), results.append)
        system.run_for(120.0)
        # C timed out in the queue; B eventually committed; the lock is
        # free and nothing leaked.
        assert {result.committed for result in results} == {True, False}
        item = system._items["hot"]
        assert item.locked_by is None
        assert not item.wait_queue
