"""Integration tests: whole-system scenarios exercising the paper's
claims end to end, including randomized failure storms."""

import pytest

from repro.core.domain import CounterDomain
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    ReadFullOp,
    TransactionSpec,
    TransferOp,
)
from repro.harness.serial import check_serializable
from repro.metrics.collector import Collector
from repro.net.link import LinkConfig
from repro.workloads.airline import AirlineWorkload
from repro.workloads.base import OpMix, WorkloadConfig, WorkloadDriver


def build(seed=0, sites=4, total=200, loss=0.0, timeout=15.0, **kwargs):
    names = [f"S{index}" for index in range(sites)]
    system = DvPSystem(SystemConfig(
        sites=names, seed=seed, txn_timeout=timeout,
        retransmit_period=3.0,
        link=LinkConfig(base_delay=1.0, jitter=1.0,
                        loss_probability=loss), **kwargs))
    system.add_item("item", CounterDomain(), total=total)
    return system


def drive(system, rate=0.1, duration=150.0, mix=None, settle=300.0):
    config = WorkloadConfig(
        arrival_rate=rate, duration=duration,
        mix=mix or OpMix(reserve=0.5, cancel=0.4, read=0.1),
        amount_low=1, amount_high=8)
    source = AirlineWorkload(["item"], config)
    collector = Collector()
    WorkloadDriver(system.sim, system, list(system.sites), source,
                   config, collector).install()
    system.run_until(duration)
    system.network.heal()
    for site in system.sites.values():
        if not site.alive:
            site.recover()
    system.run_for(settle)
    return collector


class TestConservationUnderChaos:
    @pytest.mark.parametrize("seed", range(6))
    def test_lossy_network(self, seed):
        system = build(seed=seed, loss=0.3)
        drive(system)
        system.auditor.assert_ok()

    @pytest.mark.parametrize("seed", range(4))
    def test_partitions_and_crashes(self, seed):
        system = build(seed=seed, loss=0.15)
        rng = system.sim.rng.stream("chaos")
        names = list(system.sites)
        # Random partition windows.
        for start in (30.0, 80.0):
            cut = rng.randint(1, len(names) - 1)
            groups = [names[:cut], names[cut:]]
            system.sim.at(start,
                          lambda g=groups: system.network.partition(g))
            system.sim.at(start + rng.uniform(10, 30),
                          system.network.heal)
        # Random crash + recovery.
        victim = rng.choice(names)
        system.sim.at(60.0, lambda: system.crash(victim))
        system.sim.at(95.0, lambda: system.recover(victim))
        drive(system)
        system.auditor.assert_ok()

    def test_duplicating_reordering_links(self):
        system = build(seed=9)
        system.network.configure_all_links(LinkConfig(
            base_delay=1.0, jitter=6.0, loss_probability=0.2,
            duplicate_probability=0.3))
        drive(system)
        system.auditor.assert_ok()


class TestNonBlockingBound:
    @pytest.mark.parametrize("seed", range(4))
    def test_every_decision_bounded_by_timeout(self, seed):
        system = build(seed=seed, loss=0.25, timeout=12.0)
        system.sim.at(40.0, lambda: system.network.partition(
            [list(system.sites)[:2], list(system.sites)[2:]]))
        system.sim.at(90.0, system.network.heal)
        collector = drive(system)
        assert collector.results
        slack = 1e-6
        for result in collector.results:
            assert result.latency <= 12.0 + slack, result


class TestSerializability:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_mixes_replay_cleanly(self, seed):
        system = build(seed=seed, loss=0.1)
        collector = drive(
            system, rate=0.15,
            mix=OpMix(reserve=0.45, cancel=0.35, transfer=0.0, read=0.2))
        report = check_serializable(collector.results, {"item": 200},
                                    {"item": CounterDomain()})
        assert report.ok, (report.read_mismatches, report.negative_dips)
        system.auditor.assert_ok()

    def test_committed_reads_are_exact_when_quiescent(self):
        system = build(seed=3)
        results = []
        system.submit("S0", TransactionSpec(
            ops=(DecrementOp("item", 30),)), results.append)
        system.run_for(30.0)
        system.submit("S1", TransactionSpec(
            ops=(ReadFullOp("item"),)), results.append)
        system.run_for(60.0)
        reads = [result for result in results if result.read_values]
        assert reads and reads[0].read_values["item"] == 170


class TestMultiItem:
    def test_change_flight_conserves_both(self):
        system = build(seed=2)
        system.add_item("other", CounterDomain(), total=100)
        results = []
        for _ in range(5):
            system.submit("S0", TransactionSpec(
                ops=(TransferOp("item", "other", 3),)), results.append)
        system.run_for(20.0)
        assert all(result.committed for result in results)
        assert system.auditor.expected("item") == 185
        assert system.auditor.expected("other") == 115
        system.auditor.assert_ok()

    def test_multi_item_atomicity(self):
        # A transfer whose source cannot be funded commits nothing on
        # either item.
        system = build(seed=2, total=4)
        result_box = []
        system.submit("S0", TransactionSpec(
            ops=(DecrementOp("item", 50), IncrementOp("item", 50))),
            result_box.append)
        system.run_for(60.0)
        assert result_box
        assert not result_box[0].committed
        system.auditor.assert_ok()


class TestPartitionedOperation:
    def test_both_groups_commit_during_partition(self):
        system = build(seed=5, total=400)
        names = list(system.sites)
        system.network.partition([names[:2], names[2:]])
        results = []
        for name in names:
            system.submit(name, TransactionSpec(
                ops=(DecrementOp("item", 5),)), results.append)
        system.run_for(20.0)
        assert len(results) == len(names)
        assert all(result.committed for result in results)

    def test_no_failure_detection_needed(self):
        # Crash a site silently; nobody is told; the only observable
        # effect elsewhere is timeouts on requests routed to it.
        system = build(seed=5, total=40)
        system.crash("S3")
        results = []
        system.submit("S0", TransactionSpec(
            ops=(DecrementOp("item", 25),)), results.append)
        system.run_for(60.0)
        assert results  # decided either way, without detecting anything
        system.auditor.assert_ok()


class TestLivelockDocumented:
    def test_two_sites_can_shuttle_value(self):
        """Section 8 admits a livelock risk: two simultaneous gatherers
        can race value back and forth. The base protocol resolves it by
        timeout abort (never by blocking); this test documents that at
        least one of the two racing big transactions decides, and the
        system conserves value regardless."""
        system = build(seed=11, sites=2, total=100, timeout=10.0)
        results = []
        for name in list(system.sites):
            system.submit(name, TransactionSpec(
                ops=(DecrementOp("item", 80),)), results.append)
        system.run_for(120.0)
        assert len(results) == 2  # both DECIDED (no blocking)
        system.auditor.assert_ok()
