"""Regressions for the exact-read (ReadFullOp) drain protocol.

PR 10 review question: can a retransmitted or duplicated read-drain Vm
be *double-counted* by the reading transaction — inflating the read
value or the responder tally? Pinned here as "no", with the three
mechanisms that make it so:

* the per-channel cumulative sequence number retires each Vm exactly
  once, so a duplicate or retransmitted drain is absorbed once
  (``test_duplicated_links`` / ``test_lossy_links_retransmission``);
* ``Transaction._read_responders`` is a per-item *set* of responder
  names, so a second drain from the same responder cannot double-count
  toward sufficiency;
* a re-honored drain after an early freeze release (short
  ``read_freeze`` + retry rounds) is not a double-count at all: the
  first drain zeroed the responder's fragment, so the second carries
  only value that arrived in between — and the committed read then
  *includes* that value, which is exactly the serializable outcome the
  freeze exists to protect (``test_rehonor_after_freeze_release``).
"""

from repro.core.domain import CounterDomain
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import (
    IncrementOp,
    ReadFullOp,
    TransactionSpec,
)
from repro.net.link import LinkConfig


def build(total=90, **config_kwargs):
    config_kwargs.setdefault("txn_timeout", 10.0)
    config_kwargs.setdefault("link", LinkConfig(base_delay=1.0))
    system = DvPSystem(SystemConfig(sites=["A", "B", "C"], seed=2,
                                    **config_kwargs))
    system.add_item("x", CounterDomain(), total=total)
    return system


def run_one(system, site, spec, horizon=200.0):
    results = []
    system.submit(site, spec, results.append)
    system.run_for(system.config.txn_timeout + horizon)
    assert results, "transaction never decided"
    return results[0]


class TestDrainDedup:
    def test_duplicated_links(self):
        """Every message delivered twice: the duplicate drain must be
        retired by the channel sequence, not absorbed again."""
        system = build(link=LinkConfig(base_delay=1.0,
                                       duplicate_probability=1.0))
        result = run_one(system, "A", TransactionSpec(
            ops=(ReadFullOp("x"),)))
        assert result.committed
        assert result.read_values["x"] == 90
        system.auditor.assert_ok()
        assert sum(system.fragment_values("x").values()) == 90

    def test_lossy_links_retransmission(self):
        """Drains lost in flight arrive via Vm retransmission; the
        reader counts each responder's value exactly once."""
        system = build(txn_timeout=60.0, retransmit_period=3.0,
                       link=LinkConfig(base_delay=1.0,
                                       loss_probability=0.4))
        result = run_one(system, "A", TransactionSpec(
            ops=(ReadFullOp("x"),)))
        assert result.committed
        assert result.read_values["x"] == 90
        system.auditor.assert_ok()
        assert sum(system.fragment_values("x").values()) == 90

    def test_responder_set_is_idempotent(self):
        """Unit-level pin: a second drain from the same responder does
        not advance sufficiency (the responder tally is a set)."""
        system = build()
        results = []
        txn = system.sites["A"].submit(
            TransactionSpec(ops=(ReadFullOp("x"),)), results.append)
        assert txn._read_responders == {"x": set()}
        txn._read_responders["x"].add("B")
        txn._read_responders["x"].add("B")
        assert txn._read_responders["x"] == {"B"}
        system.run_for(300.0)
        assert results and results[0].committed


class TestRehonorAfterFreezeRelease:
    def test_rehonor_after_freeze_release(self):
        """Short freeze + retry rounds: a responder drained in round 1
        can be re-funded and re-drained in round 2. The second drain is
        new value, not a double-count — the committed read includes the
        concurrent increment (serialized before it) and conservation
        holds to the cent."""
        system = build(txn_timeout=30.0, request_retries=2,
                       read_freeze=4.0)
        # Round length is 10. Partition C away so round 1 cannot reach
        # sufficiency; B's drain lands, its 4-unit freeze releases, and
        # a local increment re-funds B before the round-2 re-request.
        system.network.partition([["A", "B"], ["C"]])
        read_results = []
        system.sim.at(0.5, lambda: system.submit(
            "A", TransactionSpec(ops=(ReadFullOp("x"),)),
            read_results.append))
        inc_results = []
        system.sim.at(7.0, lambda: system.submit(
            "B", TransactionSpec(ops=(IncrementOp("x", 7),)),
            inc_results.append))
        system.sim.at(9.0, system.network.heal)
        system.run_for(300.0)

        assert inc_results and inc_results[0].committed
        assert read_results, "read never decided"
        read = read_results[0]
        assert read.committed
        # Both serializations of the concurrent increment are legal:
        # 90 (read before inc — the round-2 re-drain of B was still in
        # flight at commit) or 97 (after). A double-count would read
        # 104+ (B's fragment tallied in both rounds) or break the
        # post-hoc total; neither may ever happen.
        assert read.read_values["x"] in (90, 97)
        system.auditor.assert_ok()
        assert sum(system.fragment_values("x").values()) == 97
