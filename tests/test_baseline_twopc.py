"""Tests for the two-phase-commit baseline — especially its blocking
and dependent-recovery behaviours, which are the foil for E1/E5."""

from repro.baselines.common import BaselineConfig
from repro.baselines.twopc import TwoPCSystem
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    ReadFullOp,
    TransactionSpec,
    TransferOp,
)
from repro.net.link import LinkConfig


def build(sites=("A", "B", "C"), timeout=10.0, retry=2.0):
    system = TwoPCSystem(list(sites), seed=5,
                         link=LinkConfig(base_delay=1.0),
                         config=BaselineConfig(txn_timeout=timeout,
                                               retry_period=retry))
    for site in sites:
        system.add_item(f"acct_{site}", site, 100)
    return system


def run_one(system, origin, spec, duration=60.0):
    results = []
    system.submit(origin, spec, results.append)
    system.run_for(duration)
    assert results
    return results[0]


class TestCommitPaths:
    def test_local_transaction_commits(self):
        system = build()
        result = run_one(system, "A", TransactionSpec(
            ops=(DecrementOp("acct_A", 5),)))
        assert result.committed
        assert system.sites["A"].store.get("acct_A").value == 95

    def test_cross_site_transfer_commits(self):
        system = build()
        result = run_one(system, "A", TransactionSpec(
            ops=(TransferOp("acct_A", "acct_B", 10),)))
        assert result.committed
        assert system.sites["A"].store.get("acct_A").value == 90
        assert system.sites["B"].store.get("acct_B").value == 110

    def test_conservation_across_transfers(self):
        system = build()
        for pair in (("A", "B"), ("B", "C"), ("C", "A")):
            run_one(system, pair[0], TransactionSpec(
                ops=(TransferOp(f"acct_{pair[0]}", f"acct_{pair[1]}",
                                7),)))
        assert system.total_value() == 300

    def test_insufficient_funds_vote_no(self):
        system = build()
        result = run_one(system, "A", TransactionSpec(
            ops=(TransferOp("acct_A", "acct_B", 500),)))
        assert not result.committed
        assert result.reason == "vote-no"
        # Nothing moved, no locks leaked.
        assert system.total_value() == 300
        assert system.sites["A"].store.get("acct_A").locked_by is None

    def test_busy_participant_votes_no(self):
        system = build()
        system.sites["B"].store.get("acct_B").locked_by = "ghost"
        result = run_one(system, "A", TransactionSpec(
            ops=(TransferOp("acct_A", "acct_B", 5),)))
        assert not result.committed

    def test_read_op(self):
        system = build()
        result = run_one(system, "A", TransactionSpec(
            ops=(ReadFullOp("acct_B"),)))
        assert result.committed
        assert result.read_values["acct_B"] == 100

    def test_increment_op(self):
        system = build()
        result = run_one(system, "A", TransactionSpec(
            ops=(IncrementOp("acct_B", 5),)))
        assert result.committed
        assert system.sites["B"].store.get("acct_B").value == 105


class TestBlocking:
    def prepare_and_cut(self):
        """Set up a participant prepared on the wrong side of a cut."""
        system = build()
        results = []
        system.submit("A", TransactionSpec(
            ops=(TransferOp("acct_A", "acct_B", 10),)), results.append)
        system.run_for(1.2)  # prepare delivered at B, vote in flight
        system.network.partition([["A", "C"], ["B"]])
        return system, results

    def test_prepared_participant_blocks(self):
        system, results = self.prepare_and_cut()
        system.run_for(100.0)
        blocked = system.currently_blocked()
        assert blocked
        site, txn_id, age = blocked[0]
        assert site == "B"
        assert age > 90.0
        # The in-doubt item is untouchable.
        assert system.sites["B"].store.get("acct_B").locked_by == txn_id

    def test_coordinator_client_still_decides(self):
        system, results = self.prepare_and_cut()
        system.run_for(100.0)
        assert results
        assert results[0].reason == "timeout"

    def test_heal_unblocks_with_retransmitted_decision(self):
        system, _results = self.prepare_and_cut()
        system.run_for(100.0)
        system.network.heal()
        system.run_for(30.0)
        assert system.currently_blocked() == []
        holds = [duration for site, _txn, duration in system.lock_holds
                 if site == "B"]
        assert holds and max(holds) > 90.0


class TestRecovery:
    def test_in_doubt_items_relocked_on_recovery(self):
        system = build()
        system.submit("A", TransactionSpec(
            ops=(TransferOp("acct_A", "acct_B", 10),)))
        system.run_for(1.2)
        system.crash("B")
        system.run_for(30.0)
        report = system.recover("B")
        assert report["in_doubt"] == 1
        assert report["messages_needed"] >= 1
        assert system.sites["B"].store.get("acct_B").locked_by is not None

    def test_recovery_resolves_via_coordinator(self):
        system = build()
        system.submit("A", TransactionSpec(
            ops=(TransferOp("acct_A", "acct_B", 10),)))
        system.run_for(1.2)
        system.crash("B")
        system.run_for(30.0)
        system.recover("B")
        system.run_for(30.0)
        assert system.currently_blocked() == []

    def test_presumed_abort_for_undecided_coordinator(self):
        system = build()
        # A decision request for an unknown txn gets "abort".
        from repro.baselines.twopc import DecisionRequest
        site_a = system.sites["A"]
        received = []
        system.network.replace_handler("B", received.append)
        site_a._on_decision_request(DecisionRequest("A#999", "B"))
        system.run_for(5.0)
        assert received
        assert received[0].payload.commit is False
