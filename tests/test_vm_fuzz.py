"""Channel-level fuzzing of the Vm protocol with hypothesis.

The fates of individual real messages (deliver / drop / duplicate) are
drawn by hypothesis; whatever the schedule, every created Vm must be
absorbed exactly once and the channel must quiesce once the fates turn
benign (the retransmission loop guarantees eventual delivery).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.messages import VmAck, VmTransfer
from tests.test_vm import Harness

fate_lists = st.lists(st.sampled_from(["deliver", "drop", "dup"]),
                      min_size=0, max_size=40)
amount_lists = st.lists(st.integers(min_value=1, max_value=9),
                        min_size=1, max_size=10)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(amounts=amount_lists, fates=fate_lists)
def test_exactly_once_despite_arbitrary_fates(amounts, fates):
    h = Harness(retransmit_period=3.0)
    for amount in amounts:
        h.send_value("A", "B", "x", amount)

    fate_iter = iter(fates)

    def scripted_drop(src, dst, payload):
        fate = next(fate_iter, "deliver")
        if fate == "drop":
            return True
        if fate == "dup":
            # Deliver a copy immediately, then the original.
            manager = h.managers[dst]
            if isinstance(payload, VmTransfer):
                manager.on_transfer(payload)
            elif isinstance(payload, VmAck):
                manager.on_ack(payload)
        return False

    # Chaotic phase: scripted fates, with the retransmit timer running.
    for _round in range(6):
        h.flush(drop=scripted_drop)
        h.sim.run_until(h.sim.now + 3.0)
    # Benign phase: everything delivers until quiescence.
    for _round in range(len(amounts) + 5):
        h.flush()
        h.sim.run_until(h.sim.now + 3.0)
    h.flush()

    accepted = [entry.amount for _src, entry in h.accepted["B"]]
    assert accepted == amounts  # exactly once, in order
    assert h.managers["A"].unacked_count() == 0


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(amounts=amount_lists,
       refusal_rounds=st.integers(min_value=0, max_value=4))
def test_exactly_once_despite_temporary_refusal(amounts, refusal_rounds):
    """The receiver refuses acceptance (locked fragment) for a while;
    nothing is lost and order is preserved once it relents."""
    h = Harness(retransmit_period=3.0)
    h.refuse["B"] = True
    for amount in amounts:
        h.send_value("A", "B", "x", amount)
    for _round in range(refusal_rounds):
        h.flush()
        h.sim.run_until(h.sim.now + 3.0)
    h.refuse["B"] = False
    h.managers["B"].poke()
    for _round in range(len(amounts) + 5):
        h.flush()
        h.sim.run_until(h.sim.now + 3.0)
    h.flush()
    accepted = [entry.amount for _src, entry in h.accepted["B"]]
    assert accepted == amounts
    assert h.managers["A"].unacked_count() == 0
