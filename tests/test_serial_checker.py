"""Unit tests for the serializability replay checker."""

from repro.core.domain import CounterDomain
from repro.core.transactions import Outcome, TxnResult
from repro.harness.serial import check_serializable

domain = CounterDomain()
DOMAINS = {"x": domain}
INITIAL = {"x": 100}


def result(txn_id, finished_at, deltas=(), reads=None, inflight=None,
           committed=True):
    return TxnResult(
        txn_id=txn_id, label="", site="A",
        outcome=Outcome.COMMITTED if committed else Outcome.ABORTED,
        reason="ok", submitted_at=0.0, finished_at=finished_at,
        read_values=dict(reads or {}),
        semantic_deltas=list(deltas),
        inflight_at_commit=dict(inflight or {}))


class TestCleanHistories:
    def test_empty(self):
        report = check_serializable([], INITIAL, DOMAINS)
        assert report.ok
        assert report.transactions_replayed == 0

    def test_updates_replay(self):
        results = [
            result("t1", 1.0, deltas=[("x", -1, 10)]),
            result("t2", 2.0, deltas=[("x", +1, 5)]),
        ]
        report = check_serializable(results, INITIAL, DOMAINS)
        assert report.ok
        assert report.transactions_replayed == 2

    def test_exact_read_passes(self):
        results = [
            result("t1", 1.0, deltas=[("x", -1, 10)]),
            result("t2", 2.0, reads={"x": 90}),
        ]
        report = check_serializable(results, INITIAL, DOMAINS)
        assert report.ok
        assert report.reads_checked == 1

    def test_aborted_results_ignored(self):
        results = [
            result("t1", 1.0, deltas=[("x", -1, 999)], committed=False),
            result("t2", 2.0, reads={"x": 100}),
        ]
        report = check_serializable(results, INITIAL, DOMAINS)
        assert report.ok


class TestViolations:
    def test_over_reporting_read_flagged(self):
        results = [
            result("t1", 1.0, deltas=[("x", -1, 10)]),
            result("t2", 2.0, reads={"x": 95}),  # claims too much
        ]
        report = check_serializable(results, INITIAL, DOMAINS)
        assert not report.ok
        assert report.read_mismatches[0][0] == "t2"

    def test_under_report_without_inflight_flagged(self):
        results = [result("t1", 1.0, reads={"x": 80})]
        report = check_serializable(results, INITIAL, DOMAINS)
        assert not report.ok

    def test_negative_dip_flagged(self):
        results = [result("t1", 1.0, deltas=[("x", -1, 150)])]
        report = check_serializable(results, INITIAL, DOMAINS)
        assert not report.ok
        assert report.negative_dips[0][0] == "t1"


class TestInflightBand:
    def test_read_may_miss_in_transit_value(self):
        # 10 units were in live Vm at the read's commit: the read may
        # lawfully report anywhere in [90, 100].
        results = [result("t1", 1.0, reads={"x": 92},
                          inflight={"x": 10})]
        assert check_serializable(results, INITIAL, DOMAINS).ok

    def test_band_is_bounded_below(self):
        results = [result("t1", 1.0, reads={"x": 85},
                          inflight={"x": 10})]
        assert not check_serializable(results, INITIAL, DOMAINS).ok

    def test_band_never_allows_over_report(self):
        results = [result("t1", 1.0, reads={"x": 101},
                          inflight={"x": 10})]
        assert not check_serializable(results, INITIAL, DOMAINS).ok


class TestTieGroups:
    def test_read_tied_with_update_may_see_either(self):
        # Same commit instant: the read may observe the pre-state (100)
        # or the post-state (90).
        for observed in (100, 90):
            results = [
                result("t1", 5.0, deltas=[("x", -1, 10)]),
                result("t2", 5.0, reads={"x": observed}),
            ]
            assert check_serializable(results, INITIAL, DOMAINS).ok, \
                observed

    def test_read_tied_with_update_cannot_exceed_band(self):
        results = [
            result("t1", 5.0, deltas=[("x", -1, 10)]),
            result("t2", 5.0, reads={"x": 80}),
        ]
        assert not check_serializable(results, INITIAL, DOMAINS).ok

    def test_strict_order_between_groups(self):
        results = [
            result("t1", 1.0, deltas=[("x", -1, 10)]),
            result("t2", 2.0, reads={"x": 100}),  # must see t1
        ]
        assert not check_serializable(results, INITIAL, DOMAINS).ok
