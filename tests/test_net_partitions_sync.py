"""Unit tests for partition schedules and the synchronous network."""

import pytest

from repro.net.link import LinkConfig
from repro.net.network import Network
from repro.net.partitions import (
    PartitionEvent,
    PartitionSchedule,
    PartitionScheduler,
)
from repro.net.sync import SynchronousNetwork
from repro.sim.kernel import Simulator


class TestPartitionSchedule:
    def test_window_builder(self):
        schedule = PartitionSchedule.window(10.0, 20.0, [["A"], ["B"]])
        assert len(schedule.events) == 2
        assert schedule.events[0].time == 10.0
        assert not schedule.events[0].heals
        assert schedule.events[1].heals

    def test_window_rejects_reversed(self):
        with pytest.raises(ValueError):
            PartitionSchedule.window(20.0, 10.0, [["A"]])

    def test_fluent_chaining(self):
        schedule = PartitionSchedule().split_at(1.0, [["A"]]).heal_at(2.0)
        assert [event.time for event in schedule.events] == [1.0, 2.0]

    def test_event_groups_frozen(self):
        event = PartitionEvent(1.0, (("A",), ("B",)))
        assert event.groups == (("A",), ("B",))


class TestPartitionScheduler:
    def test_applies_split_and_heal(self):
        sim = Simulator()
        network = Network(sim)
        for name in ("A", "B"):
            network.register(name, lambda e: None)
        schedule = PartitionSchedule.window(5.0, 10.0, [["A"], ["B"]])
        PartitionScheduler(sim, network, schedule).install()
        sim.run_until(6.0)
        assert not network.reachable("A", "B")
        sim.run_until(11.0)
        assert network.reachable("A", "B")

    def test_records_applied_events(self):
        sim = Simulator()
        network = Network(sim)
        network.register("A", lambda e: None)
        scheduler = PartitionScheduler(
            sim, network, PartitionSchedule().heal_at(1.0))
        scheduler.install()
        sim.run()
        assert len(scheduler.applied) == 1


class TestSynchronousNetwork:
    def make(self):
        sim = Simulator(1)
        network = SynchronousNetwork(sim, delay=1.0)
        inboxes: dict[str, list] = {}
        for name in ("A", "B", "C", "D"):
            inboxes[name] = []
            network.register(
                name, lambda e, n=name: inboxes[n].append(e.payload))
        return sim, network, inboxes

    def test_constant_delay(self):
        sim, network, inboxes = self.make()
        network.send("A", "B", "x")
        sim.run()
        assert sim.now == 1.0

    def test_no_loss(self):
        sim, network, inboxes = self.make()
        for _ in range(50):
            network.send("A", "B", "x")
        sim.run()
        assert len(inboxes["B"]) == 50

    def test_order_synchronicity(self):
        # If C receives m_a (from A) before m_b (from B), then m_a was
        # sent earlier — equal constant delay guarantees it.
        sim, network, inboxes = self.make()
        network.send("A", "C", "first")
        sim.run_until(0.5)
        network.send("B", "C", "second")
        sim.run()
        assert inboxes["C"] == ["first", "second"]

    def test_simultaneous_broadcasts_same_order_everywhere(self):
        # Two sites broadcast at the same instant: every receiver must
        # observe the two broadcasts in the same (rank) order.
        sim, network, inboxes = self.make()
        sim.at(1.0, lambda: network.broadcast("B", "from-B"))
        sim.at(1.0, lambda: network.broadcast("A", "from-A"))
        sim.run()
        # A registered before B -> rank order puts A's message first.
        assert inboxes["C"] == ["from-A", "from-B"]
        assert inboxes["D"] == ["from-A", "from-B"]

    def test_partition_still_possible(self):
        sim, network, inboxes = self.make()
        network.partition([["A"], ["B", "C", "D"]])
        network.send("A", "B", "x")
        sim.run()
        assert inboxes["B"] == []
        assert network.dropped_partition == 1

    def test_unknown_destination(self):
        _sim, network, _ = self.make()
        with pytest.raises(KeyError):
            network.send("A", "Z", "x")
