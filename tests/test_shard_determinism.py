"""End-to-end determinism of the sharded kernel: worker-count-invariant
fingerprints and outcomes on the harness experiments' scenarios and
across chaos exploration.

These are the acceptance tests for the sharding contract: ``workers``
may only change which OS schedule executes the shards, never anything
any shard (or oracle) can observe.
"""

from dataclasses import replace

import pytest

from repro.chaos.explore import explore
from repro.chaos.runner import ChaosConfig, run_chaos
from repro.chaos.plan import FaultPlan
from repro.core.domain import CounterDomain
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import DecrementOp, TransactionSpec
from repro.harness.experiments import e01_nonblocking as e01
from repro.harness.experiments import e06_hotspot as e06
from repro.net.link import LinkConfig
from repro.workloads.base import WorkloadConfig, WorkloadDriver
from repro.workloads.inventory import InventoryWorkload


def _e01_params(shards, workers):
    return e01.Params(partition_durations=[20.0], arrival_rate=0.08,
                      shards=shards, shard_workers=workers)


def _e06_params(shards, workers):
    return e06.Params(duration=80.0, rebalance_sellers=4,
                      shards=shards, shard_workers=workers)


class TestExperimentOutcomes:
    def test_e01_dvp_stats_worker_invariant(self):
        baseline = e01._run_dvp(_e01_params(2, 1), 20.0)
        assert baseline["decided"] > 0
        for workers in (2, 4):
            assert e01._run_dvp(_e01_params(2, workers), 20.0) == baseline

    def test_e01_dvp_stats_match_classic_kernel(self):
        """Sharding may not change what the experiment measures."""
        classic = e01._run_dvp(_e01_params(1, 1), 20.0)
        sharded = e01._run_dvp(_e01_params(2, 1), 20.0)
        assert sharded == classic

    def test_e06_rebalance_stats_worker_invariant(self):
        baseline = e06._run_rebalance(_e06_params(2, 1), "demand-weighted")
        assert baseline["decided"] > 0
        for workers in (2, 4):
            assert e06._run_rebalance(_e06_params(2, workers),
                                      "demand-weighted") == baseline

    def test_e06_rebalance_stats_match_classic_kernel(self):
        classic = e06._run_rebalance(_e06_params(1, 1), "static-rr")
        sharded = e06._run_rebalance(_e06_params(3, 1), "static-rr")
        assert sharded == classic


def _e01_style_fingerprint(shards, workers, seed=11):
    """The E1 scenario shape — partitioned workload plus victim — run
    with tracing, so the fingerprint contract is tested on a full
    protocol execution (net, Vm retransmission, timeouts, partitions).
    """
    sites = ["W", "X", "Y", "Z"]
    system = DvPSystem(SystemConfig(
        sites=sites, seed=seed, txn_timeout=15.0,
        link=LinkConfig(base_delay=2.0, jitter=1.0),
        shards=shards, shard_workers=workers))
    system.sim.enable_trace(limit=0)
    source = e01.CrossSiteTransfers(sites)
    for site in sites:
        system.add_item(source.item_of(site), CounterDomain(), total=120)
    driver = WorkloadDriver(
        system.sim, system, sites, source,
        WorkloadConfig(arrival_rate=0.1, duration=90.0))
    driver.install()
    system.sim.at_site(sites[0], 37.5,
                       lambda: system.submit(sites[0], TransactionSpec(
                           ops=(DecrementOp(source.item_of(sites[0]),
                                            120),),
                           label="victim")),
                       label="victim")
    system.sim.at_global(40.0, lambda: system.network.partition(
        [sites[:2], sites[2:]]), label="partition")
    system.sim.at_global(60.0, system.network.heal, label="heal")
    system.run_until(90.0)
    system.run_for(75.0)
    system.auditor.assert_ok()
    return (system.sim.trace_fingerprint(), system.sim.steps,
            len(system.committed()), len(system.aborted()))


def _e06_style_fingerprint(shards, workers, seed=67):
    """The E6 hot-spot shape: one counter partitioned over all sites."""
    sites = [f"S{index}" for index in range(6)]
    system = DvPSystem(SystemConfig(
        sites=sites, seed=seed, txn_timeout=12.0,
        link=LinkConfig(base_delay=2.0),
        shards=shards, shard_workers=workers))
    system.sim.enable_trace(limit=0)
    config = WorkloadConfig(arrival_rate=0.08, duration=60.0,
                            amount_low=1, amount_high=2)
    source = InventoryWorkload(["hot"], config)
    system.add_item("hot", CounterDomain(), total=100_000)
    WorkloadDriver(system.sim, system, sites, source, config).install()
    system.run_for(60.0 + 12.0 + 60.0)
    system.auditor.assert_ok()
    return (system.sim.trace_fingerprint(), system.sim.steps,
            len(system.committed()))


class TestScenarioFingerprints:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_e01_scenario_fingerprint_worker_invariant(self, shards):
        baseline = _e01_style_fingerprint(shards, 1)
        assert baseline[2] + baseline[3] > 0   # something was decided
        for workers in (2, 4, 7):
            assert _e01_style_fingerprint(shards, workers) == baseline

    def test_e06_scenario_fingerprint_worker_invariant(self):
        baseline = _e06_style_fingerprint(3, 1)
        assert baseline[2] > 0
        for workers in (2, 4):
            assert _e06_style_fingerprint(3, workers) == baseline

    def test_e01_outcomes_match_classic_kernel(self):
        """Fingerprints differ between shard counts by construction
        (per-shard streams); observable protocol outcomes may not."""
        classic = _e01_style_fingerprint(1, 1)
        sharded = _e01_style_fingerprint(4, 1)
        assert sharded[2:] == classic[2:]


def _reshard_style_fingerprint(shards, workers, seed=29):
    """The E13 scenario shape: a consistent-hash placement with a site
    join and a decommission mid-run, under workload. Migration ticks
    run as global (barrier) events that ship cross-shard Vm, so this
    pins the kernel's globals-phase mail delivery as well as the
    migration controller's own determinism.

    Jittered links, as in the E1 shape: with constant delays, two
    messages from different shards can land on one site at the exact
    same instant, and the kernels break that tie differently (send
    order vs shard-id drain order) — both deterministic, but not
    comparable across kernels."""
    sites = [f"S{index}" for index in range(6)]
    system = DvPSystem(SystemConfig(
        sites=sites, seed=seed, txn_timeout=12.0,
        link=LinkConfig(base_delay=2.0, jitter=1.0),
        shards=shards, shard_workers=workers,
        partitioner="consistent", replicas=2))
    system.sim.enable_trace(limit=0)
    config = WorkloadConfig(arrival_rate=0.08, duration=80.0,
                            amount_low=1, amount_high=2)
    source = InventoryWorkload(["itemA", "itemB"], config)
    system.add_item("itemA", CounterDomain(), total=600)
    system.add_item("itemB", CounterDomain(), total=600)
    WorkloadDriver(system.sim, system, sites, source, config).install()
    system.sim.at_global(30.0, lambda: system.add_site("E0"),
                         label="join")

    def leave() -> None:
        # The join's migration may still be draining; retry on a fixed
        # cadence (deterministic: drain progress is part of the trace).
        if system.reshard_in_progress:
            system.sim.at_global(system.sim.now + 5.0, leave,
                                 label="leave-retry")
        else:
            system.remove_site(sites[-1])

    system.sim.at_global(55.0, leave, label="leave")
    system.run_until(80.0)
    system.run_for(12.0 + 120.0)
    system.auditor.assert_ok()
    assert not system.reshard_in_progress
    return (system.sim.trace_fingerprint(), system.sim.steps,
            len(system.committed()), len(system.aborted()),
            system.sim.metrics.counter("migrate.ships").value,
            system.directory.epoch)


class TestReshardDeterminism:
    """Satellite of docs/PARTITIONING.md: topology changes mid-run may
    not cost any replay determinism."""

    def test_reshard_scenario_fingerprint_worker_invariant(self):
        baseline = _reshard_style_fingerprint(2, 1)
        assert baseline[2] > 0          # transactions committed
        assert baseline[4] > 0          # migration Vm actually shipped
        assert baseline[5] == 2         # join + leave = two epochs
        for workers in (2, 4):
            assert _reshard_style_fingerprint(2, workers) == baseline

    def test_reshard_outcomes_match_classic_kernel(self):
        """Fingerprints differ between shard counts by construction
        (per-shard streams); commits, aborts, migration ships, and the
        final epoch may not."""
        classic = _reshard_style_fingerprint(1, 1)
        sharded = _reshard_style_fingerprint(3, 1)
        assert sharded[2:] == classic[2:]

    def test_reshard_scenario_replays_bit_for_bit(self):
        assert _reshard_style_fingerprint(2, 2) == \
            _reshard_style_fingerprint(2, 2)


class TestChaosExploration:
    """The chaos engine's replay determinism, sharded: every run of a
    budget-100 exploration must fingerprint identically no matter how
    many worker lanes execute the shards."""

    CONFIG = ChaosConfig(sites=4, items=2, txns=16, duration=40.0,
                         settle=100.0, shards=2)

    @pytest.mark.parametrize("seed", [7, 19, 23])
    def test_budget_100_exploration_worker_invariant(self, seed):
        def fingerprints(workers):
            config = replace(self.CONFIG, shard_workers=workers)
            prints = []
            report = explore(config, budget=100, master_seed=seed,
                             on_run=lambda index, result:
                             prints.append(result.fingerprint))
            return prints, report

        base_prints, base_report = fingerprints(1)
        assert len(base_prints) == 100
        for workers in (2, 4):
            prints, report = fingerprints(workers)
            assert prints == base_prints
            assert len(report.failures) == len(base_report.failures)

    def test_sharded_run_replays_bit_for_bit(self):
        config = replace(self.CONFIG, shard_workers=3)
        first = run_chaos(config, FaultPlan(()), seed=7)
        second = run_chaos(config, FaultPlan(()), seed=7)
        assert first.fingerprint == second.fingerprint
        assert not first.failed

    def test_old_artifact_dicts_load_with_shard_defaults(self):
        """PR 2-5 recorded artifacts carry no shard keys; they must
        load as shards=1 (the classic kernel, byte-for-byte)."""
        data = ChaosConfig().to_dict()
        del data["shards"], data["shard_workers"]
        config = ChaosConfig.from_dict(data)
        assert config.shards == 1 and config.shard_workers == 1
