"""Unit tests for links, the network, partitions and delivery."""

import pytest

from repro.net.link import Link, LinkConfig
from repro.net.message import Envelope
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.sim.random import RandomStreams


def make_network(sim=None, **link_kwargs):
    sim = sim or Simulator(1)
    network = Network(sim, LinkConfig(**link_kwargs))
    inboxes: dict[str, list] = {}
    for name in ("A", "B", "C"):
        inboxes[name] = []
        network.register(name, inboxes[name].append)
    return sim, network, inboxes


class TestLinkConfig:
    @pytest.mark.parametrize("kwargs", [
        {"base_delay": -1.0},
        {"jitter": -0.1},
        {"loss_probability": 1.5},
        {"loss_probability": -0.1},
        {"duplicate_probability": 2.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            LinkConfig(**kwargs)

    def test_defaults_are_reliable(self):
        config = LinkConfig()
        assert config.loss_probability == 0.0
        assert config.duplicate_probability == 0.0


class TestLink:
    def test_delay_without_jitter_is_constant(self):
        link = Link("A", "B", LinkConfig(base_delay=2.0),
                    RandomStreams(1).stream("l"))
        assert all(link.draw_delay() == 2.0 for _ in range(5))

    def test_delay_with_jitter_in_bounds(self):
        link = Link("A", "B", LinkConfig(base_delay=2.0, jitter=1.0),
                    RandomStreams(1).stream("l"))
        for _ in range(100):
            assert 2.0 <= link.draw_delay() <= 3.0

    def test_down_link_drops_everything(self):
        link = Link("A", "B", LinkConfig(), RandomStreams(1).stream("l"))
        link.fail()
        assert all(link.should_drop() for _ in range(10))
        assert link.losses == 10
        link.restore()
        assert not link.should_drop()

    def test_loss_rate_statistics(self):
        link = Link("A", "B", LinkConfig(loss_probability=0.5),
                    RandomStreams(1).stream("l"))
        drops = sum(link.should_drop() for _ in range(2000))
        assert 850 < drops < 1150

    def test_duplicate_counter(self):
        link = Link("A", "B", LinkConfig(duplicate_probability=1.0),
                    RandomStreams(1).stream("l"))
        assert link.should_duplicate()
        assert link.duplicates == 1


class TestNetwork:
    def test_delivery(self):
        sim, network, inboxes = make_network(base_delay=2.0)
        network.send("A", "B", "hello")
        sim.run()
        assert [envelope.payload for envelope in inboxes["B"]] == ["hello"]
        assert sim.now == 2.0

    def test_duplicate_registration_rejected(self):
        _sim, network, _ = make_network()
        with pytest.raises(ValueError):
            network.register("A", lambda e: None)

    def test_unknown_destination_rejected(self):
        _sim, network, _ = make_network()
        with pytest.raises(KeyError):
            network.send("A", "Zebra", "x")

    def test_send_counts_by_kind(self):
        sim, network, _ = make_network()
        network.send("A", "B", "payload")
        assert network.sent_counts["str"] == 1
        sim.run()
        assert network.delivered_counts["str"] == 1

    def test_partition_blocks_cross_group(self):
        sim, network, inboxes = make_network()
        network.partition([["A"], ["B", "C"]])
        network.send("A", "B", "lost")
        network.send("B", "C", "kept")
        sim.run()
        assert inboxes["B"] == []
        assert [e.payload for e in inboxes["C"]] == ["kept"]
        assert network.dropped_partition == 1

    def test_partition_drop_is_silent(self):
        sim, network, inboxes = make_network()
        network.partition([["A"], ["B"]])
        network.send("A", "B", "x")
        sim.run()  # no exception, no delivery, no notification
        assert inboxes["B"] == []

    def test_unlisted_sites_form_leftover_group(self):
        _sim, network, _ = make_network()
        network.partition([["A"]])
        assert network.reachable("B", "C")
        assert not network.reachable("A", "B")

    def test_partition_unknown_site_rejected(self):
        _sim, network, _ = make_network()
        with pytest.raises(KeyError):
            network.partition([["Zebra"]])

    def test_partition_duplicate_site_rejected(self):
        _sim, network, _ = make_network()
        with pytest.raises(ValueError):
            network.partition([["A"], ["A"]])

    def test_heal_restores_reachability(self):
        sim, network, inboxes = make_network()
        network.partition([["A"], ["B"]])
        network.heal()
        network.send("A", "B", "x")
        sim.run()
        assert len(inboxes["B"]) == 1
        assert not network.partitioned

    def test_partitioned_property(self):
        _sim, network, _ = make_network()
        assert not network.partitioned
        network.partition([["A"], ["B", "C"]])
        assert network.partitioned

    def test_message_in_flight_swallowed_by_partition(self):
        sim, network, inboxes = make_network(base_delay=5.0)
        network.send("A", "B", "doomed")
        sim.run_until(1.0)
        network.partition([["A"], ["B", "C"]])
        sim.run()
        assert inboxes["B"] == []
        assert network.dropped_partition == 1

    def test_loss_drops_messages(self):
        sim, network, inboxes = make_network(loss_probability=1.0)
        network.send("A", "B", "x")
        sim.run()
        assert inboxes["B"] == []
        assert network.dropped_loss == 1

    def test_duplication_delivers_twice(self):
        sim, network, inboxes = make_network(duplicate_probability=1.0)
        network.send("A", "B", "x")
        sim.run()
        assert len(inboxes["B"]) == 2
        assert inboxes["B"][1].duplicated

    def test_jitter_can_reorder(self):
        sim = Simulator(3)
        network = Network(sim, LinkConfig(base_delay=1.0, jitter=5.0))
        received = []
        network.register("A", lambda e: None)
        network.register("B", lambda e: received.append(e.payload))
        for index in range(30):
            network.send("A", "B", index)
        sim.run()
        assert sorted(received) == list(range(30))
        assert received != list(range(30))

    def test_broadcast_reaches_all_others(self):
        sim, network, inboxes = make_network()
        network.broadcast("A", "hi")
        sim.run()
        assert len(inboxes["A"]) == 0
        assert len(inboxes["B"]) == 1
        assert len(inboxes["C"]) == 1

    def test_broadcast_with_explicit_targets(self):
        sim, network, inboxes = make_network()
        network.broadcast("A", "hi", dsts=["C"])
        sim.run()
        assert len(inboxes["B"]) == 0
        assert len(inboxes["C"]) == 1

    def test_configure_link_overrides(self):
        sim, network, inboxes = make_network(base_delay=1.0)
        network.configure_link("A", "B", LinkConfig(base_delay=9.0))
        network.send("A", "B", "x")
        sim.run()
        assert sim.now == 9.0

    def test_configure_all_links(self):
        sim, network, inboxes = make_network(base_delay=1.0)
        network.send("A", "B", "warm")  # materialize the link
        network.configure_all_links(LinkConfig(loss_probability=1.0))
        network.send("A", "B", "x")
        sim.run()
        assert [e.payload for e in inboxes["B"]] == ["warm"]

    def test_inject_link_fault_shadows_base_config(self):
        sim, network, inboxes = make_network(base_delay=1.0)
        network.inject_link_fault("A", "B", LinkConfig(base_delay=9.0))
        network.send("A", "B", "slow")
        sim.run()
        assert sim.now == 9.0
        network.clear_link_fault("A", "B")
        network.send("A", "B", "fast")
        sim.run()
        assert sim.now == 10.0

    def test_clear_all_link_faults_restores_down_links(self):
        sim, network, inboxes = make_network()
        network.inject_link_fault("A", "B",
                                  LinkConfig(loss_probability=1.0))
        network.link("A", "B").fail()
        network.clear_all_link_faults()
        network.send("A", "B", "x")
        sim.run()
        assert [e.payload for e in inboxes["B"]] == ["x"]

    def test_replace_handler(self):
        sim, network, inboxes = make_network()
        replacement: list = []
        network.replace_handler("B", replacement.append)
        network.send("A", "B", "x")
        sim.run()
        assert inboxes["B"] == []
        assert len(replacement) == 1

    def test_replace_handler_unknown_site(self):
        _sim, network, _ = make_network()
        with pytest.raises(KeyError):
            network.replace_handler("Zebra", lambda e: None)

    def test_partition_plus_loss_counted_once(self):
        # Regression: a message eaten by the partition while the link
        # would also have dropped it must be counted exactly once,
        # attributed to the partition (which takes precedence).
        sim, network, inboxes = make_network(loss_probability=1.0)
        network.partition([["A"], ["B", "C"]])
        network.send("A", "B", "x")
        sim.run()
        assert inboxes["B"] == []
        assert network.dropped_partition == 1
        assert network.dropped_loss == 0

    def test_loss_stream_not_perturbed_by_partition(self):
        # The loss draw is sampled whether or not the partition eats
        # the message, so a partition window never shifts the loss
        # outcomes of later sends (fault plans stay composable).
        deliveries = []
        for with_partition in (False, True):
            sim, network, inboxes = make_network(loss_probability=0.5)
            if with_partition:
                network.partition([["A"], ["B", "C"]])
                network.send("A", "B", "eaten")
                network.heal()
            else:
                network.link("A", "B").should_drop()  # burn one draw
            for index in range(20):
                network.send("A", "B", index)
            sim.run()
            deliveries.append([e.payload for e in inboxes["B"]])
        assert deliveries[0] == deliveries[1]

    def test_envelope_metadata(self):
        sim, network, inboxes = make_network(base_delay=1.5)
        network.send("A", "B", 42)
        sim.run()
        envelope = inboxes["B"][0]
        assert isinstance(envelope, Envelope)
        assert envelope.src == "A"
        assert envelope.dst == "B"
        assert envelope.sent_at == 0.0
        assert envelope.kind() == "int"
