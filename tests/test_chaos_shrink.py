"""Delta-debugging shrinker: known-bad plans minimize to tiny repros
that still fail the same oracles, and the frozen JSON artifact replays
the minimized failure bit-identically.

The known-bad runs plant a real conservation bug via the test-only
leak hooks in :mod:`repro.core.fragments` ("write" leaks a unit on
every stable write; "crash" tears a page on crash in a way redo cannot
restore), then hide it inside noisy multi-action fault plans. The
shrinker must strip the noise.
"""

from __future__ import annotations

import pytest

from repro.chaos import (
    ChaosConfig,
    CrashSite,
    FaultPlan,
    HealNet,
    LinkFaultWindow,
    PartitionNet,
    RecoverSite,
    ReproArtifact,
    SkewTick,
    default_name,
    run_chaos,
    shrink,
)
from repro.core import fragments

CONFIG = ChaosConfig()

#: Three known-bad scenarios: (injection, seed, noisy plan). Each must
#: shrink to <= 3 actions that still fail the original oracles.
KNOWN_BAD = [
    ("crash", 101, FaultPlan((
        LinkFaultWindow(at=5.0, src="S0", dst="S1", duration=12.0,
                        loss=0.5),
        PartitionNet(at=10.0, groups=(("S0", "S1"), ("S2", "S3"))),
        HealNet(at=22.0),
        CrashSite(at=30.0, site="S2"),
        RecoverSite(at=40.0, site="S2"),
        SkewTick(at=50.0, site="S3"),
    ))),
    ("crash", 202, FaultPlan((
        CrashSite(at=12.0, site="S0"),
        RecoverSite(at=20.0, site="S0"),
        LinkFaultWindow(at=25.0, src="S1", dst="S3", duration=8.0,
                        duplicate=0.5),
        CrashSite(at=45.0, site="S3"),
        RecoverSite(at=55.0, site="S3"),
    ))),
    ("write", 303, FaultPlan((
        PartitionNet(at=8.0, groups=(("S0",), ("S1", "S2", "S3"))),
        HealNet(at=18.0),
        LinkFaultWindow(at=20.0, src="S2", dst="S0", duration=10.0,
                        jitter=6.0),
        SkewTick(at=35.0, site="S1"),
    ))),
]


@pytest.fixture
def leak():
    """Arm/disarm the planted conservation bug around each test."""
    def arm(mode):
        fragments.set_test_leak(mode)
    yield arm
    fragments.set_test_leak(None)


class TestShrinker:
    @pytest.mark.parametrize("injection,seed,plan", KNOWN_BAD)
    def test_known_bad_plans_shrink_small(self, leak, tmp_path,
                                          injection, seed, plan):
        leak(injection)
        result = shrink(CONFIG, plan, seed)
        # Locally minimal and tiny.
        assert len(result.minimal) <= 3
        assert len(result.minimal) < len(plan)
        # The minimized plan still fails the original oracles.
        assert result.final is not None and result.final.failed
        assert set(result.target_oracles) <= set(result.final.failures)
        # And it does so on a fresh run too (predicate is pure).
        rerun = run_chaos(CONFIG, result.minimal, seed)
        assert set(result.target_oracles) <= set(rerun.failures)
        # Freeze as JSON and replay from the artifact alone.
        artifact = ReproArtifact(seed=seed, config=CONFIG,
                                 plan=result.minimal,
                                 injection=injection,
                                 failures=rerun.failures)
        path = artifact.write(tmp_path / default_name(artifact))
        replayed = ReproArtifact.load(path).replay()
        assert replayed.failed
        assert replayed.fingerprint == rerun.fingerprint
        assert replayed.failures == rerun.failures

    def test_crash_leak_minimizes_to_the_crash(self, leak):
        # The "crash" leak only fires on a crash: the single crash
        # action is the whole causal story.
        leak("crash")
        injection, seed, plan = KNOWN_BAD[0]
        result = shrink(CONFIG, plan, seed)
        assert [action.kind for action in result.minimal.actions] == \
            ["crash"]

    def test_healthy_plan_refuses_to_shrink(self):
        with pytest.raises(ValueError, match="nothing to shrink"):
            shrink(CONFIG, FaultPlan(), seed=11)

    def test_shrink_respects_max_runs(self, leak):
        leak("crash")
        injection, seed, plan = KNOWN_BAD[1]
        result = shrink(CONFIG, plan, seed, max_runs=3)
        assert result.runs <= 4  # baseline + capped probes
        assert result.final is not None and result.final.failed

    def test_history_records_every_probe(self, leak):
        leak("write")
        injection, seed, plan = KNOWN_BAD[2]
        result = shrink(CONFIG, plan, seed)
        # Every probe is logged; the count matches (minus baseline).
        assert len(result.history) == result.runs - 1
        assert any("FAIL" in line for line in result.history)


class TestArtifactFormat:
    def test_round_trip(self, tmp_path):
        artifact = ReproArtifact(
            seed=7, config=CONFIG,
            plan=FaultPlan((CrashSite(at=3.0, site="S1"),)),
            injection="crash",
            failures={"auditor": ["boom"]}, note="hand-written")
        path = artifact.write(tmp_path / "repro.json")
        loaded = ReproArtifact.load(path)
        assert loaded.seed == artifact.seed
        assert loaded.config == artifact.config
        assert loaded.plan == artifact.plan
        assert loaded.injection == "crash"
        assert loaded.failures == {"auditor": ["boom"]}
        assert loaded.note == "hand-written"

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "something-else/9"}')
        with pytest.raises(Exception, match="not a dvp-chaos-repro"):
            ReproArtifact.load(path)

    def test_default_name_is_descriptive(self):
        artifact = ReproArtifact(
            seed=7, config=CONFIG,
            plan=FaultPlan((CrashSite(at=3.0, site="S1"),)),
            injection="crash", failures={"auditor": ["x"]})
        assert default_name(artifact) == \
            "chaos_auditor_crash_seed7_1act.json"

    def test_replay_disarms_injection_afterwards(self, tmp_path):
        artifact = ReproArtifact(
            seed=7, config=CONFIG,
            plan=FaultPlan((CrashSite(at=3.0, site="S1"),)),
            injection="crash")
        artifact.replay()
        assert fragments.test_leak() is None


class TestCommittedRepro:
    """The repro checked in under tests/repros/ must keep reproducing."""

    def test_committed_artifacts_replay(self):
        import pathlib

        repro_dir = pathlib.Path(__file__).parent / "repros"
        paths = sorted(repro_dir.glob("*.json"))
        assert paths, "no committed repro artifacts found"
        for path in paths:
            artifact = ReproArtifact.load(path)
            result = artifact.replay()
            assert result.failed_oracles == \
                tuple(sorted(artifact.failures)), path.name
            # Same scenario without the planted bug is healthy: the
            # failure is the injection's, not the protocol's.
            artifact.injection = None
            assert not artifact.replay().failed, path.name
