"""Tests for the application façades (airline / bank / inventory)."""

import pytest

from repro.apps import Bank, InventoryControl, ReservationSystem
from repro.core.domain import CounterDomain
from repro.core.system import DvPSystem, SystemConfig
from repro.net.link import LinkConfig


def build_system(sites=("N", "S", "E", "W")):
    return DvPSystem(SystemConfig(
        sites=list(sites), seed=29, txn_timeout=12.0,
        link=LinkConfig(base_delay=1.0)))


class TestReservationSystem:
    def build(self):
        system = build_system()
        app = ReservationSystem(system)
        app.add_flight("UA1", 80)
        return system, app

    def test_add_flight_with_quotas(self):
        system = build_system()
        app = ReservationSystem(system)
        app.add_flight("UA2", 10, quotas={"N": 10})
        assert system.fragment_values("UA2")["N"] == 10

    def test_quotas_must_sum(self):
        app = ReservationSystem(build_system())
        with pytest.raises(ValueError):
            app.add_flight("UA3", 10, quotas={"N": 5})

    def test_duplicate_flight_rejected(self):
        _system, app = self.build()
        with pytest.raises(ValueError):
            app.add_flight("UA1", 5)

    def test_unknown_flight_rejected(self):
        _system, app = self.build()
        with pytest.raises(KeyError):
            app.reserve("N", "nope", 1)

    def test_reserve_and_cancel(self):
        system, app = self.build()
        results = []
        app.reserve("N", "UA1", 3, results.append)
        app.cancel("S", "UA1", 2, results.append)
        system.run_for(5.0)
        assert all(result.committed for result in results)
        assert system.auditor.expected("UA1") == 79

    def test_reserve_gathers_when_quota_short(self):
        system, app = self.build()
        results = []
        app.reserve("N", "UA1", 50, results.append)  # quota is 20
        system.run_for(30.0)
        assert results and results[0].committed
        system.auditor.assert_ok()

    def test_change_flight_moves_availability(self):
        system, app = self.build()
        app.add_flight("UA9", 40)
        results = []
        app.change_flight("N", "UA1", "UA9", 4, results.append)
        system.run_for(20.0)
        assert results and results[0].committed
        # Customer left UA1 (seats come back) for UA9 (seats consumed).
        assert system.auditor.expected("UA1") == 84
        assert system.auditor.expected("UA9") == 36

    def test_seats_available_exact(self):
        system, app = self.build()
        results = []
        app.reserve("N", "UA1", 5)
        system.run_for(5.0)
        app.seats_available("S", "UA1", results.append)
        system.run_for(30.0)
        assert results and results[0].committed
        assert results[0].read_values["UA1"] == 75

    def test_local_quota(self):
        system, app = self.build()
        assert app.local_quota("N", "UA1") == 20


class TestBank:
    def build(self):
        system = build_system(("downtown", "airport"))
        bank = Bank(system)
        bank.open_account("alice", {"downtown": 30_000,
                                    "airport": 10_000})
        return system, bank

    def test_deposit_always_commits(self):
        system, bank = self.build()
        results = []
        bank.deposit("airport", "alice", 5_000, results.append)
        system.run_for(2.0)
        assert results and results[0].committed
        assert bank.branch_share("airport", "alice") == 15_000

    def test_withdraw_gathers_funds(self):
        system, bank = self.build()
        results = []
        bank.withdraw("airport", "alice", 25_000, results.append)
        system.run_for(30.0)
        assert results and results[0].committed
        system.auditor.assert_ok()

    def test_overdraft_refused(self):
        system, bank = self.build()
        results = []
        bank.withdraw("airport", "alice", 99_999, results.append)
        system.run_for(60.0)
        assert results and not results[0].committed
        assert system.auditor.expected("alice") == 40_000

    def test_transfer_between_accounts(self):
        system, bank = self.build()
        bank.open_account("bob", {"downtown": 1_000})
        results = []
        bank.transfer("downtown", "alice", "bob", 2_500, results.append)
        system.run_for(10.0)
        assert results and results[0].committed
        assert system.auditor.expected("alice") == 37_500
        assert system.auditor.expected("bob") == 3_500

    def test_audit_balance(self):
        system, bank = self.build()
        results = []
        bank.audit_balance("downtown", "alice", results.append)
        system.run_for(30.0)
        assert results and results[0].committed
        assert results[0].read_values["alice"] == 40_000

    def test_duplicate_account_rejected(self):
        _system, bank = self.build()
        with pytest.raises(ValueError):
            bank.open_account("alice", {"downtown": 1})


class TestInventoryControl:
    def build(self):
        system = build_system(("wh1", "wh2", "wh3"))
        inventory = InventoryControl(system)
        inventory.add_sku("widget", 90)
        return system, inventory

    def test_sell_and_restock(self):
        system, inventory = self.build()
        results = []
        inventory.sell("wh1", "widget", 10, results.append)
        inventory.restock("wh2", "widget", 5, results.append)
        system.run_for(5.0)
        assert all(result.committed for result in results)
        assert system.auditor.expected("widget") == 85

    def test_stock_check(self):
        system, inventory = self.build()
        results = []
        inventory.stock_check("wh3", "widget", results.append)
        system.run_for(30.0)
        assert results and results[0].committed
        assert results[0].read_values["widget"] == 90

    def test_on_hand_locally(self):
        _system, inventory = self.build()
        assert inventory.on_hand_locally("wh1", "widget") == 30

    def test_sell_more_than_exists_aborts(self):
        system, inventory = self.build()
        results = []
        inventory.sell("wh1", "widget", 500, results.append)
        system.run_for(60.0)
        assert results and not results[0].committed
        system.auditor.assert_ok()
