"""Tests for workload generators, the driver, and metrics."""

import math
import random

import pytest

from repro.core.domain import CounterDomain
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    Outcome,
    ReadFullOp,
    TransactionSpec,
    TransferOp,
    TxnResult,
    UnsupportedSpec,
)
from repro.core.site import SiteDown
from repro.metrics.collector import Collector, CollectorInconsistency
from repro.metrics.stats import Summary, percentile, summarize
from repro.metrics.tables import Table
from repro.workloads.airline import AirlineWorkload
from repro.workloads.banking import BankingWorkload
from repro.workloads.base import (
    _ZIPF_CUM_CACHE,
    OpMix,
    WorkloadConfig,
    WorkloadDriver,
    poisson_count,
    zipf_choice,
)
from repro.workloads.inventory import InventoryWorkload


class TestOpMix:
    def test_normalized_sums_to_one(self):
        mix = OpMix(reserve=2.0, cancel=1.0, transfer=1.0, read=0.0)
        weights = dict(mix.normalized())
        assert math.isclose(sum(weights.values()), 1.0)
        assert weights["reserve"] == 0.5

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            OpMix(reserve=0, cancel=0, transfer=0, read=0).normalized()


class TestWorkloadConfig:
    @pytest.mark.parametrize("kwargs", [
        {"arrival_rate": 0.0},
        {"duration": 0.0},
        {"amount_low": 0},
        {"amount_low": 5, "amount_high": 2},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadConfig(**kwargs)


class TestZipf:
    def test_zero_skew_is_uniform_choice(self):
        rng = random.Random(1)
        items = ["a", "b", "c"]
        picks = {zipf_choice(rng, items, 0.0) for _ in range(100)}
        assert picks == set(items)

    def test_high_skew_prefers_head(self):
        rng = random.Random(1)
        items = [f"i{k}" for k in range(10)]
        picks = [zipf_choice(rng, items, 2.0) for _ in range(1000)]
        assert picks.count("i0") > picks.count("i9") * 3

    def test_single_item(self):
        assert zipf_choice(random.Random(1), ["only"], 5.0) == "only"


class TestPoissonCount:
    def test_mean_roughly_right(self):
        rng = random.Random(2)
        samples = [poisson_count(rng, 0.5, 20.0) for _ in range(500)]
        assert 9 < sum(samples) / len(samples) < 11

    def test_zero_ish_rate(self):
        rng = random.Random(2)
        assert poisson_count(rng, 0.0001, 1.0) in (0, 1)


class TestGenerators:
    @pytest.mark.parametrize("workload_cls,items", [
        (AirlineWorkload, ["f1", "f2"]),
        (BankingWorkload, ["acct1", "acct2"]),
        (InventoryWorkload, ["sku1", "sku2"]),
    ])
    def test_specs_are_well_formed(self, workload_cls, items):
        source = workload_cls(items)
        rng = random.Random(3)
        for _ in range(200):
            spec = source.make_spec(rng, "site")
            assert isinstance(spec, TransactionSpec)
            assert spec.ops
            assert spec.items() <= set(items)

    def test_empty_items_rejected(self):
        for workload_cls in (AirlineWorkload, BankingWorkload,
                             InventoryWorkload):
            with pytest.raises(ValueError):
                workload_cls([])

    def test_airline_transfer_targets_distinct_flights(self):
        source = AirlineWorkload(["f1", "f2"], WorkloadConfig(
            mix=OpMix(reserve=0, cancel=0, transfer=1.0, read=0)))
        rng = random.Random(3)
        for _ in range(50):
            spec = source.make_spec(rng, "site")
            op = spec.ops[0]
            assert isinstance(op, TransferOp)
            assert op.src_item != op.dst_item

    def test_inventory_read_label(self):
        source = InventoryWorkload(["sku"], WorkloadConfig(
            mix=OpMix(reserve=0, cancel=0, transfer=0, read=1.0)))
        spec = source.make_spec(random.Random(3), "site")
        assert isinstance(spec.ops[0], ReadFullOp)
        assert spec.label == "stock-check"


class TestDriver:
    def build(self):
        system = DvPSystem(SystemConfig(sites=["A", "B"]))
        system.add_item("f", CounterDomain(), total=1000)
        return system

    def test_install_schedules_arrivals(self):
        system = self.build()
        config = WorkloadConfig(arrival_rate=0.5, duration=100.0)
        driver = WorkloadDriver(system.sim, system, ["A", "B"],
                                AirlineWorkload(["f"], config), config)
        scheduled = driver.install()
        assert scheduled > 0
        system.run_for(150.0)
        assert len(driver.collector.results) == scheduled

    def test_deterministic_across_builds(self):
        def run(seed):
            system = DvPSystem(SystemConfig(sites=["A", "B"], seed=seed))
            system.add_item("f", CounterDomain(), total=1000)
            config = WorkloadConfig(arrival_rate=0.3, duration=60.0)
            driver = WorkloadDriver(system.sim, system, ["A", "B"],
                                    AirlineWorkload(["f"], config), config)
            driver.install()
            system.run_for(100.0)
            return [(r.label, r.site, r.submitted_at)
                    for r in driver.collector.results]

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_dead_site_submissions_counted_as_lost(self):
        system = self.build()
        system.crash("A")
        config = WorkloadConfig(arrival_rate=0.5, duration=50.0)
        driver = WorkloadDriver(system.sim, system, ["A"],
                                AirlineWorkload(["f"], config), config)
        driver.install()
        system.run_for(100.0)
        assert driver.collector.lost == driver.collector.submitted


def make_result(latency, committed=True, reason="ok", submitted=0.0,
                site="A"):
    return TxnResult(
        txn_id="t", label="", site=site,
        outcome=Outcome.COMMITTED if committed else Outcome.ABORTED,
        reason=reason, submitted_at=submitted,
        finished_at=submitted + latency)


class TestStats:
    def test_percentile_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == 2.5

    def test_percentile_empty_is_nan(self):
        assert math.isnan(percentile([], 50))

    def test_percentile_range_checked(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150)

    def test_summarize(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.count == 3
        assert summary.mean == 2.0
        assert summary.maximum == 3.0

    def test_summarize_empty(self):
        assert summarize([]) == Summary.empty()


class TestCollector:
    def test_views(self):
        collector = Collector()
        collector.on_result(make_result(1.0))
        collector.on_result(make_result(2.0, committed=False,
                                        reason="timeout"))
        assert len(collector.committed) == 1
        assert len(collector.aborted) == 1
        assert collector.commit_rate() == 0.5
        assert collector.abort_reasons() == {"timeout": 1}

    def test_max_latency_covers_aborts(self):
        collector = Collector()
        collector.on_result(make_result(1.0))
        collector.on_result(make_result(9.0, committed=False))
        assert collector.max_latency() == 9.0

    def test_window_filters_by_submission(self):
        collector = Collector()
        collector.on_result(make_result(1.0, submitted=5.0))
        collector.on_result(make_result(1.0, submitted=15.0))
        window = collector.in_window(0.0, 10.0)
        assert len(window.results) == 1

    def test_window_counts_lost_submissions(self):
        """Regression: a windowed view must see submissions that never
        reported back. Pre-fix, in_window set submitted from the result
        count, so window.lost was identically 0 even when a crash
        swallowed transactions submitted inside the window."""
        collector = Collector()
        collector.on_submit(at=2.0)   # vanished in a crash — no result
        collector.on_submit(at=4.0)
        collector.on_result(make_result(1.0, submitted=4.0))
        collector.on_submit(at=12.0)  # outside the window
        collector.on_result(make_result(1.0, submitted=12.0))
        window = collector.in_window(0.0, 10.0)
        assert window.submitted == 2
        assert len(window.results) == 1
        assert window.lost == 1

    def test_window_without_timestamps_keeps_legacy_behaviour(self):
        collector = Collector()
        collector.on_submit()  # no timestamp recorded
        collector.on_result(make_result(1.0, submitted=5.0))
        window = collector.in_window(0.0, 10.0)
        assert window.submitted == 1
        assert window.lost == 0

    def test_throughput(self):
        collector = Collector()
        for _ in range(10):
            collector.on_result(make_result(1.0))
        assert collector.throughput(5.0) == 2.0
        assert collector.throughput(0.0) == 0.0


class TestTable:
    def test_render_contains_everything(self):
        table = Table("Title", ["a", "b"])
        table.add_row(1, "x")
        table.add_note("hello")
        text = table.render()
        assert "Title" in text
        assert "hello" in text
        assert "x" in text

    def test_row_width_checked(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_column_extraction(self):
        table = Table("T", ["a", "b"])
        table.add_row(1, "x")
        table.add_row(2, "y")
        assert table.column("a") == [1, 2]

    def test_float_formatting(self):
        table = Table("T", ["v"])
        table.add_row(1.234567)
        table.add_row(float("nan"))
        table.add_row(3.0)
        rendered = table.render()
        assert "1.23" in rendered
        assert "-" in rendered
        assert " 3" in rendered or "3" in rendered

    def test_infinite_cells_render(self):
        """Regression: float('inf') cells crashed render() with
        OverflowError (int(inf) inside _format_cell)."""
        table = Table("T", ["v"])
        table.add_row(float("inf"))
        table.add_row(float("-inf"))
        rendered = table.render()
        assert "inf" in rendered
        assert "-inf" in rendered


class _ExplodingTarget:
    """Submit target with a programming error inside submit()."""

    def submit(self, site, spec, on_done=None):
        raise RuntimeError("boom")


class _RefusingTarget:
    """Submit target that refuses every spec with a typed refusal."""

    def __init__(self, exc):
        self.exc = exc
        self.calls = 0

    def submit(self, site, spec, on_done=None):
        self.calls += 1
        raise self.exc


class TestDriverErrorNarrowing:
    """Regression: the arrival path used a bare ``except Exception``,
    so a broken submit target silently dropped every transaction and
    runs reported 100% "lost" instead of failing."""

    def build(self, target):
        system = DvPSystem(SystemConfig(sites=["A"]))
        config = WorkloadConfig(arrival_rate=1.0, duration=20.0)
        driver = WorkloadDriver(system.sim, target, ["A"],
                                AirlineWorkload(["f"], config), config)
        return system, driver

    def test_programming_errors_propagate(self):
        system, driver = self.build(_ExplodingTarget())
        driver.install()
        with pytest.raises(RuntimeError, match="boom"):
            system.sim.run_until(30.0)

    @pytest.mark.parametrize("exc", [SiteDown("A is down"),
                                     UnsupportedSpec("shape refused")])
    def test_typed_refusals_counted_as_lost(self, exc):
        target = _RefusingTarget(exc)
        system, driver = self.build(target)
        driver.install()
        system.sim.run_until(30.0)
        assert target.calls > 0
        assert driver.collector.submitted == target.calls
        assert driver.collector.lost == driver.collector.submitted

    def test_open_loop_path_narrowed_too(self):
        system, driver = self.build(_ExplodingTarget())
        driver.install_open_loop()
        with pytest.raises(RuntimeError, match="boom"):
            system.sim.run_until(30.0)


class TestZipfCumulativeCache:
    """Regression: ``zipf_choice`` rebuilt the weight vector on every
    draw. The cached cumulative path must stay bit-identical to the
    original ``rng.choices(items, weights=...)`` draws."""

    def test_bit_identical_to_uncached_choices(self):
        items = [f"item{rank}" for rank in range(50)]
        for seed in range(8):
            for skew in (0.4, 0.9, 1.3):
                weights = [1.0 / ((rank + 1) ** skew)
                           for rank in range(len(items))]
                cached = random.Random(seed)
                original = random.Random(seed)
                got = [zipf_choice(cached, items, skew)
                       for _ in range(300)]
                want = [original.choices(items, weights=weights)[0]
                        for _ in range(300)]
                assert got == want

    def test_cache_entry_reused_across_item_lists(self):
        _ZIPF_CUM_CACHE.clear()
        rng = random.Random(0)
        zipf_choice(rng, ["a", "b", "c"], 0.5)
        entry = _ZIPF_CUM_CACHE[(3, 0.5)]
        zipf_choice(rng, ["x", "y", "z"], 0.5)
        assert _ZIPF_CUM_CACHE[(3, 0.5)] is entry
        assert len(_ZIPF_CUM_CACHE) == 1


class TestSummarizeSortsOnce:
    """Regression: ``summarize`` called ``percentile`` three times and
    each call re-sorted the whole sample."""

    def test_never_calls_resorting_percentile(self, monkeypatch):
        import repro.metrics.stats as stats

        def resort_detected(values, q):
            raise AssertionError("summarize re-sorted via percentile()")

        monkeypatch.setattr(stats, "percentile", resort_detected)
        values = [random.Random(7).gauss(10, 3) for _ in range(5000)]
        summary = stats.summarize(values)
        assert summary.p50 == percentile(values, 50)
        assert summary.p95 == percentile(values, 95)
        assert summary.p99 == percentile(values, 99)
        assert summary.maximum == max(values)

    def test_micro_gate_at_one_million_samples(self):
        from time import perf_counter

        rng = random.Random(11)
        values = [rng.random() for _ in range(1_000_000)]
        begin = perf_counter()
        summarize(values)
        once = perf_counter() - begin
        begin = perf_counter()
        for q in (50, 95, 99):
            percentile(values, q)
        thrice = perf_counter() - begin
        assert once < thrice, (
            f"summarize ({once:.3f}s) should beat three sorting "
            f"percentile calls ({thrice:.3f}s)")


class TestCollectorDoubleReport:
    """Regression: ``lost`` clamped with ``max(0, ...)``, so a result
    reported twice silently cancelled out a genuinely lost one."""

    def test_duplicate_result_raises(self):
        collector = Collector()
        collector.on_submit(at=0.0)
        result = make_result(1.0)
        collector.on_result(result)
        collector.on_result(result)
        with pytest.raises(CollectorInconsistency):
            collector.lost

    def test_sink_only_collector_reports_zero_lost(self):
        collector = Collector()
        collector.on_result(make_result(1.0))
        assert collector.lost == 0

    def test_shed_counts_toward_accounted_outcomes(self):
        collector = Collector()
        for _ in range(3):
            collector.on_submit(at=0.0)
        collector.on_result(make_result(1.0))
        collector.on_shed(at=0.5)
        assert collector.lost == 1
