"""Edge-case failure tests: double recovery, freezes across crashes,
delivery to dead sites, checkpoint/window interplay."""

import pytest

from repro.core.domain import CounterDomain
from repro.core.messages import READ_MODE, DataRequest
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    TransactionSpec,
)
from repro.net.link import LinkConfig


def build(**kwargs):
    kwargs.setdefault("sites", ["A", "B", "C"])
    kwargs.setdefault("txn_timeout", 10.0)
    kwargs.setdefault("retransmit_period", 2.0)
    kwargs.setdefault("link", LinkConfig(base_delay=1.0))
    system = DvPSystem(SystemConfig(seed=51, **kwargs))
    system.add_item("x", CounterDomain(), total=90)
    return system


class TestRepeatedFailures:
    def test_recover_without_crash_is_safe(self):
        system = build()
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 5),)))
        system.run_for(2.0)
        report = system.recover("A")  # no crash happened
        assert report.messages_needed == 0
        assert system.sites["A"].fragments.value("x") == 25
        system.auditor.assert_ok()

    def test_crash_recover_crash_recover(self):
        system = build(checkpoint_interval=3)
        for round_number in range(3):
            system.submit("A", TransactionSpec(
                ops=(IncrementOp("x", 2),)))
            system.run_for(2.0)
            system.crash("A")
            system.run_for(3.0)
            system.recover("A")
            system.run_for(2.0)
        assert system.sites["A"].crash_count == 3
        assert system.auditor.expected("x") == 96
        system.run_for(200.0)
        system.auditor.assert_ok()

    def test_crash_during_gather_then_client_retry(self):
        system = build()
        results = []
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 60),)),
                      results.append)
        system.run_for(0.5)
        system.crash("A")
        system.run_for(20.0)
        assert results == []  # first attempt vanished with the crash
        system.recover("A")
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 60),)),
                      results.append)
        system.run_for(60.0)
        assert results
        system.run_for(300.0)
        system.auditor.assert_ok()

    def test_simultaneous_crash_of_sender_and_receiver(self):
        system = build()
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 60),)))
        system.run_for(1.6)  # honors in progress, Vm possibly in flight
        system.crash("A")
        system.crash("B")
        system.run_for(10.0)
        system.recover("A")
        system.recover("B")
        system.run_for(400.0)
        system.auditor.assert_ok()


class TestFreezeAcrossCrash:
    def test_freeze_release_after_crash_is_harmless(self):
        system = build(read_freeze=6.0)
        site_b = system.sites["B"]
        ts = 1 << 40
        site_b.handle_request(DataRequest("A#1", "A", "x", READ_MODE,
                                          None, ts))
        assert not site_b.locks.is_free("x")
        system.crash("B")
        system.run_for(10.0)  # the freeze-release event fires while dead
        system.recover("B")
        assert site_b.locks.is_free("x")
        system.run_for(300.0)
        system.auditor.assert_ok()


class TestDeliveryToDeadSites:
    def test_messages_to_dead_site_vanish_silently(self):
        system = build()
        system.crash("B")
        log_length = len(system.sites["B"].log)
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 60),)))
        system.run_for(30.0)
        assert len(system.sites["B"].log) == log_length

    def test_vm_lands_after_receiver_recovers(self):
        system = build()
        # C is drained so only B can fund the request.
        system.submit("C", TransactionSpec(ops=(DecrementOp("x", 30),)))
        system.run_for(1.0)
        system.crash("B")
        results = []
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 50),)),
                      results.append)
        system.run_for(30.0)
        assert results and not results[0].committed  # B was dark
        system.recover("B")
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 50),)),
                      results.append)
        system.run_for(60.0)
        assert results[1].committed
        system.run_for(300.0)
        system.auditor.assert_ok()


class TestWindowWithFailures:
    def test_window_plus_crash_conserves(self):
        system = build(vm_window=1, checkpoint_interval=4)
        results = []
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 70),)),
                      results.append)
        system.run_for(2.5)
        # Crash a granting peer while its windowed queue is non-empty.
        granting = [name for name in ("B", "C")
                    if system.sites[name].vm.unacked_count()]
        if granting:
            system.crash(granting[0])
            system.run_for(10.0)
            system.recover(granting[0])
        system.run_for(400.0)
        system.auditor.assert_ok()
        for site in system.sites.values():
            assert site.vm.unacked_count() == 0
