"""Smoke tests: every example script runs to completion and tells its
story (commits where the narrative promises commits, audits balanced).
"""

import importlib
import io
import sys
from contextlib import redirect_stdout

import pytest

EXAMPLES = [
    ("examples.quickstart", ["committed", "audit", "[OK]"]),
    ("examples.airline_partition", ["balanced", "during the partition"]),
    ("examples.banking_recovery", ["balanced to the cent",
                                   "ONLY its local log"]),
    ("examples.giftcard_tokens", ["balanced", "sold"]),
    ("examples.inventory_hotspot", ["DvP fragments", "escrow"]),
]


@pytest.fixture(scope="module", autouse=True)
def examples_on_path():
    sys.path.insert(0, ".")
    yield
    sys.path.remove(".")


@pytest.mark.parametrize("module_name,expected", EXAMPLES)
def test_example_runs(module_name, expected):
    module = importlib.import_module(module_name)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main()
    output = buffer.getvalue()
    for needle in expected:
        assert needle in output, f"{module_name}: missing {needle!r}"
    assert "VIOLATION" not in output
