"""Unit tests for the partitionable value domains (Γ, Π)."""

from collections import Counter

import pytest

from repro.core.domain import (
    CounterDomain,
    DomainError,
    MoneyDomain,
    TokenSetDomain,
    check_partitionable,
)


class TestCounterDomain:
    domain = CounterDomain()

    def test_zero(self):
        assert self.domain.zero() == 0
        assert self.domain.is_zero(0)
        assert not self.domain.is_zero(1)

    def test_combine(self):
        assert self.domain.combine(3, 4) == 7

    def test_pi_folds(self):
        assert self.domain.pi([1, 2, 3, 4]) == 10
        assert self.domain.pi([]) == 0

    def test_validate_accepts_non_negative_int(self):
        assert self.domain.validate(0) == 0
        assert self.domain.validate(100) == 100

    @pytest.mark.parametrize("bad", [-1, 1.5, "x", True, None])
    def test_validate_rejects(self, bad):
        with pytest.raises(DomainError):
            self.domain.validate(bad)

    def test_split_grants_at_most_want(self):
        assert self.domain.split(10, 4) == (4, 6)

    def test_split_grants_at_most_available(self):
        assert self.domain.split(3, 10) == (3, 0)

    def test_split_conserves(self):
        granted, remainder = self.domain.split(9, 5)
        assert granted + remainder == 9

    def test_covers(self):
        assert self.domain.covers(5, 5)
        assert self.domain.covers(6, 5)
        assert not self.domain.covers(4, 5)

    def test_deficit(self):
        assert self.domain.deficit(3, 10) == 7
        assert self.domain.deficit(10, 3) == 0

    def test_subtract(self):
        assert self.domain.subtract(10, 4) == 6

    def test_subtract_underflow(self):
        with pytest.raises(DomainError):
            self.domain.subtract(3, 4)

    def test_describe(self):
        assert self.domain.describe(7) == "7"


class TestMoneyDomain:
    def test_inherits_counter_algebra(self):
        domain = MoneyDomain()
        assert domain.combine(100, 250) == 350

    def test_describe_formats_currency(self):
        assert MoneyDomain().describe(123456) == "$1,234.56"

    def test_distinct_name(self):
        assert MoneyDomain().name == "money"
        assert CounterDomain().name == "counter"


class TestTokenSetDomain:
    domain = TokenSetDomain()

    def test_zero_is_empty(self):
        assert self.domain.zero() == Counter()
        assert self.domain.is_zero(Counter())
        assert self.domain.is_zero(Counter({"a": 0}))

    def test_combine_is_multiset_union(self):
        merged = self.domain.combine(Counter({"a": 1}), Counter({"a": 2,
                                                                 "b": 1}))
        assert merged == Counter({"a": 3, "b": 1})

    def test_combine_does_not_mutate(self):
        left = Counter({"a": 1})
        self.domain.combine(left, Counter({"a": 5}))
        assert left == Counter({"a": 1})

    def test_validate_rejects_negative_multiplicity(self):
        with pytest.raises(DomainError):
            self.domain.validate(Counter({"a": -1}))

    def test_validate_rejects_non_counter(self):
        with pytest.raises(DomainError):
            self.domain.validate({"a": 1})

    def test_split_grants_present_tokens(self):
        granted, remainder = self.domain.split(
            Counter({"a": 2, "b": 1}), Counter({"a": 1, "c": 4}))
        assert granted == Counter({"a": 1})
        assert remainder == Counter({"a": 1, "b": 1})

    def test_split_conserves(self):
        value = Counter({"a": 3, "b": 2})
        granted, remainder = self.domain.split(value, Counter({"a": 2}))
        assert self.domain.combine(granted, remainder) == value

    def test_covers(self):
        assert self.domain.covers(Counter({"a": 2}), Counter({"a": 2}))
        assert not self.domain.covers(Counter({"a": 1}), Counter({"a": 2}))
        assert self.domain.covers(Counter({"a": 1}), Counter())

    def test_deficit(self):
        missing = self.domain.deficit(Counter({"a": 1}),
                                      Counter({"a": 3, "b": 1}))
        assert missing == Counter({"a": 2, "b": 1})

    def test_subtract(self):
        result = self.domain.subtract(Counter({"a": 3}), Counter({"a": 1}))
        assert result == Counter({"a": 2})

    def test_subtract_underflow(self):
        with pytest.raises(DomainError):
            self.domain.subtract(Counter({"a": 1}), Counter({"a": 2}))

    def test_describe(self):
        assert self.domain.describe(Counter()) == "{}"
        assert self.domain.describe(Counter({"b": 2, "a": 1})) == \
            "{a×1, b×2}"


class TestCheckPartitionable:
    def test_counter_groupings(self):
        domain = CounterDomain()
        fragments = [1, 2, 3, 4]
        groupings = [
            [[1], [2], [3], [4]],
            [[1, 2], [3, 4]],
            [[1, 2, 3, 4]],
            [[1, 4], [2, 3]],
        ]
        assert check_partitionable(domain, fragments, groupings)

    def test_token_groupings(self):
        domain = TokenSetDomain()
        fragments = [Counter({"a": 1}), Counter({"b": 2}),
                     Counter({"a": 1, "b": 1})]
        groupings = [[fragments[:2], fragments[2:]],
                     [[fragment] for fragment in fragments]]
        assert check_partitionable(domain, fragments, groupings)
