"""Unit tests for transaction specs and the transaction state machine."""

import pytest

from repro.core.domain import CounterDomain
from repro.core.operators import BoundedDecrement, Increment, SetToZero
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import (
    ApplyOp,
    DecrementOp,
    IncrementOp,
    Outcome,
    ReadFullOp,
    TransactionSpec,
    TransferOp,
)
from repro.net.link import LinkConfig


def build(sites=("A", "B", "C"), total=90, **config_kwargs):
    config_kwargs.setdefault("txn_timeout", 10.0)
    config_kwargs.setdefault("link", LinkConfig(base_delay=1.0))
    system = DvPSystem(SystemConfig(sites=list(sites), seed=2,
                                    **config_kwargs))
    system.add_item("x", CounterDomain(), total=total)
    return system


def run_one(system, site, spec):
    results = []
    system.submit(site, spec, results.append)
    system.run_for(system.config.txn_timeout + 200.0)
    assert results, "transaction never decided"
    return results[0]


class TestSpec:
    def test_items_union(self):
        spec = TransactionSpec(ops=(DecrementOp("a", 1),
                                    TransferOp("b", "c", 2),
                                    ReadFullOp("d")))
        assert spec.items() == {"a", "b", "c", "d"}

    def test_read_and_update_overlap_rejected(self):
        with pytest.raises(ValueError):
            TransactionSpec(ops=(ReadFullOp("a"), IncrementOp("a", 1)))

    def test_needs_sums_decrements(self):
        domain = CounterDomain()
        spec = TransactionSpec(ops=(DecrementOp("a", 2),
                                    DecrementOp("a", 3),
                                    IncrementOp("a", 100),
                                    TransferOp("a", "b", 4)))
        needs = spec.needs(lambda item: domain)
        assert needs == {"a": 9}

    def test_needs_includes_negative_apply_ops(self):
        domain = CounterDomain()
        spec = TransactionSpec(ops=(ApplyOp("a", BoundedDecrement(7)),))
        assert spec.needs(lambda item: domain) == {"a": 7}

    def test_needs_skips_deltaless_operators(self):
        domain = CounterDomain()
        spec = TransactionSpec(ops=(ApplyOp("a", SetToZero()),))
        assert spec.needs(lambda item: domain) == {}


class TestLocalCommit:
    def test_sufficient_local_commit_is_instant(self):
        system = build()
        result = run_one(system, "A", TransactionSpec(
            ops=(DecrementOp("x", 5),)))
        assert result.committed
        assert result.latency == 0.0
        assert system.fragment_values("x")["A"] == 25

    def test_increment_always_commits(self):
        system = build(total=0)
        result = run_one(system, "A", TransactionSpec(
            ops=(IncrementOp("x", 7),)))
        assert result.committed
        assert system.fragment_values("x")["A"] == 7

    def test_transfer_between_items_is_local(self):
        system = build()
        system.add_item("y", CounterDomain(), total=0)
        result = run_one(system, "A", TransactionSpec(
            ops=(TransferOp("x", "y", 10),)))
        assert result.committed
        assert result.requests_sent == 0
        assert system.fragment_values("y")["A"] == 10

    def test_semantic_deltas_reported(self):
        system = build()
        system.add_item("y", CounterDomain(), total=0)
        result = run_one(system, "A", TransactionSpec(
            ops=(DecrementOp("x", 2), TransferOp("x", "y", 3))))
        assert ("x", -1, 2) in result.semantic_deltas
        assert ("x", -1, 3) in result.semantic_deltas
        assert ("y", +1, 3) in result.semantic_deltas

    def test_ops_execute_in_order(self):
        # Decrement 30 would fail alone (fragment 30... needs 35), but
        # an increment first funds it: ops are ordered.
        system = build()
        result = run_one(system, "A", TransactionSpec(
            ops=(IncrementOp("x", 10), DecrementOp("x", 35))))
        assert result.committed

    def test_apply_op_generic_operator(self):
        system = build()
        result = run_one(system, "A", TransactionSpec(
            ops=(ApplyOp("x", Increment(4)),)))
        assert result.committed
        assert system.fragment_values("x")["A"] == 34


class TestRedistribution:
    def test_gathers_from_peers(self):
        system = build()
        result = run_one(system, "A", TransactionSpec(
            ops=(DecrementOp("x", 50),)))  # A holds 30 of 90
        assert result.committed
        assert result.requests_sent > 0
        system.auditor.assert_ok()

    def test_aborts_when_value_globally_insufficient(self):
        system = build(total=30)
        result = run_one(system, "A", TransactionSpec(
            ops=(DecrementOp("x", 50),)))
        assert not result.committed
        assert result.reason == "timeout"
        system.auditor.assert_ok()

    def test_abort_leaves_absorbed_value_at_site(self):
        # An aborted transaction is an Rds transaction: the Vm it
        # absorbed stay in the local fragment.
        system = build(total=30)
        before = system.fragment_values("x")["A"]
        run_one(system, "A", TransactionSpec(ops=(DecrementOp("x", 50),)))
        system.run_for(300.0)
        after = system.fragment_values("x")["A"]
        assert after >= before  # gathered value was not rolled back
        system.auditor.assert_ok()

    def test_timeout_bounds_decision(self):
        system = build(total=30, txn_timeout=7.0)
        result = run_one(system, "A", TransactionSpec(
            ops=(DecrementOp("x", 500),)))
        assert not result.committed
        assert result.latency == pytest.approx(7.0)

    def test_partition_causes_timeout_abort(self):
        system = build()
        system.network.partition([["A"], ["B", "C"]])
        result = run_one(system, "A", TransactionSpec(
            ops=(DecrementOp("x", 50),)))
        assert not result.committed
        assert result.reason == "timeout"

    def test_single_site_system_insufficient_aborts_immediately(self):
        system = build(sites=("A",), total=5)
        result = run_one(system, "A", TransactionSpec(
            ops=(DecrementOp("x", 50),)))
        assert not result.committed
        assert result.reason == "insufficient-no-peers"
        assert result.latency == 0.0

    def test_request_retries_resend(self):
        system = build(total=90, request_retries=2,
                       link=LinkConfig(base_delay=1.0,
                                       loss_probability=1.0))
        result = run_one(system, "A", TransactionSpec(
            ops=(DecrementOp("x", 50),)))
        assert not result.committed
        # 2 peers x (1 initial + 2 retry rounds) = 6 requests.
        assert result.requests_sent == 6


class TestWorkPhase:
    def test_work_delays_commit(self):
        system = build()
        result = run_one(system, "A", TransactionSpec(
            ops=(DecrementOp("x", 5),), work=3.5))
        assert result.committed
        assert result.latency == pytest.approx(3.5)

    def test_work_is_not_subject_to_timeout(self):
        system = build(txn_timeout=2.0)
        result = run_one(system, "A", TransactionSpec(
            ops=(DecrementOp("x", 5),), work=10.0))
        assert result.committed

    def test_locks_held_during_work(self):
        system = build(txn_timeout=50.0)
        results = []
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 5),),
                                           work=10.0), results.append)
        system.run_for(1.0)
        # Conc1 refuses the conflicting lock outright.
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 1),)),
                      results.append)
        system.run_for(100.0)
        outcomes = {result.reason for result in results}
        assert "locked" in outcomes


class TestReadFull:
    def test_read_drains_everything(self):
        system = build()
        result = run_one(system, "B", TransactionSpec(
            ops=(ReadFullOp("x"),)))
        assert result.committed
        assert result.read_values["x"] == 90
        values = system.fragment_values("x")
        assert values["B"] == 90
        assert values["A"] == values["C"] == 0

    def test_read_reflects_prior_commits(self):
        system = build()
        run_one(system, "A", TransactionSpec(ops=(DecrementOp("x", 10),)))
        result = run_one(system, "B", TransactionSpec(
            ops=(ReadFullOp("x"),)))
        assert result.read_values["x"] == 80

    def test_read_aborts_during_partition(self):
        system = build()
        system.network.partition([["B"], ["A", "C"]])
        result = run_one(system, "B", TransactionSpec(
            ops=(ReadFullOp("x"),)))
        assert not result.committed

    def test_read_plus_other_item_update(self):
        system = build()
        system.add_item("y", CounterDomain(), total=9)
        result = run_one(system, "A", TransactionSpec(
            ops=(ReadFullOp("x"), DecrementOp("y", 1))))
        assert result.committed
        assert result.read_values["x"] == 90


class TestIneffectiveOps:
    def test_ineffective_apply_aborts(self):
        # SetToZero is fine; a hand-built always-ineffective operator
        # must abort the transaction at commit evaluation.
        class Never(SetToZero):
            def apply(self, domain, value):
                from repro.core.operators import Application
                return Application(value, False)

        system = build()
        result = run_one(system, "A", TransactionSpec(
            ops=(ApplyOp("x", Never()),)))
        assert not result.committed
        assert result.reason == "ineffective-operator"


class TestConc1Admission:
    def test_lower_timestamp_refused_after_higher(self):
        system = build()
        # Transaction at C stamps A's fragment remotely via a request.
        run_one(system, "C", TransactionSpec(ops=(DecrementOp("x", 80),)))
        # A's clock is behind C's fragment stamp now? Submit and check
        # the system still decides (commit or timestamp abort, never
        # hangs).
        result = run_one(system, "A", TransactionSpec(
            ops=(DecrementOp("x", 1),)))
        assert result.outcome in (Outcome.COMMITTED, Outcome.ABORTED)

    def test_site_down_submit_raises(self):
        from repro.core.site import SiteDown
        system = build()
        system.crash("A")
        with pytest.raises(SiteDown):
            system.submit("A", TransactionSpec(ops=(IncrementOp("x", 1),)))
