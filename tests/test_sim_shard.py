"""The sharded kernel: plan validation, placement semantics, the
conservative-lookahead guard, and the determinism contract (identical
trace fingerprints for every worker count)."""

import pytest

from repro.sim.events import HeapEventQueue
from repro.sim.kernel import LookaheadError, SimulationError, Simulator
from repro.sim.shard import ShardPlan, ShardedSimulator

SITES = ["s0", "s1", "s2", "s3"]


def plan4(lookahead=1.0):
    """One site per shard: the maximally distributed plan."""
    return ShardPlan.round_robin(SITES, 4, lookahead)


class TestShardPlan:
    def test_round_robin_deals_in_order(self):
        plan = ShardPlan.round_robin(SITES, 2, 1.0)
        assert plan.site_shard == {"s0": 0, "s1": 1, "s2": 0, "s3": 1}
        assert plan.shards == 2

    def test_round_robin_clamps_to_site_count(self):
        plan = ShardPlan.round_robin(["a", "b"], 8, 1.0)
        assert plan.shards == 2

    def test_lookahead_must_be_positive(self):
        with pytest.raises(ValueError):
            ShardPlan({"a": 0}, 0.0)
        with pytest.raises(ValueError):
            ShardPlan({"a": 0}, -1.0)

    def test_shard_ids_must_be_dense(self):
        with pytest.raises(ValueError):
            ShardPlan({"a": 0, "b": 2}, 1.0)

    def test_needs_sites(self):
        with pytest.raises(ValueError):
            ShardPlan({}, 1.0)

    def test_shard_of_unknown_site(self):
        with pytest.raises(KeyError):
            plan4().shard_of("nope")


class TestPlacement:
    def test_setup_at_site_lands_on_owning_shard(self):
        sim = ShardedSimulator(plan4())
        ran = []
        for index, site in enumerate(SITES):
            sim.at_site(site, 1.0 + index, lambda site=site: ran.append(site))
        sim.run()
        assert ran == SITES
        assert sim.steps == 4
        assert [sim.shard_of(site) for site in SITES] == [0, 1, 2, 3]

    def test_unhinted_at_outside_events_goes_to_shard_zero(self):
        sim = ShardedSimulator(plan4())
        seen = []
        sim.at(2.0, lambda: seen.append(sim.shard_of("s0")))
        sim.run()
        assert sim.steps == 1 and seen == [0]

    def test_after_inside_event_stays_on_shard(self):
        """Site code arming timers with plain after() never migrates."""
        sim = ShardedSimulator(plan4())
        clocks = []

        def tick():
            clocks.append(sim.now)
            if len(clocks) < 3:
                sim.after(0.25, tick)

        sim.at_site("s2", 1.0, tick)
        sim.run()
        assert clocks == [1.0, 1.25, 1.5]
        # All three executed on s2's shard (its step counter moved).
        assert sim.steps == 3

    def test_cross_shard_mail_at_lookahead_is_legal(self):
        sim = ShardedSimulator(plan4(lookahead=1.0))
        arrivals = []
        sim.at_site("s0", 1.0,
                    lambda: sim.after_for_site("s1", 1.0,
                                               lambda: arrivals.append(
                                                   sim.now)))
        sim.run()
        assert arrivals == [2.0]

    def test_cross_shard_mail_returns_no_handle(self):
        sim = ShardedSimulator(plan4())
        handles = []
        sim.at_site("s0", 1.0,
                    lambda: handles.append(
                        sim.after_for_site("s1", 2.0, lambda: None)))
        sim.run()
        assert handles == [None]

    def test_short_cross_shard_delay_raises_lookahead_error(self):
        sim = ShardedSimulator(plan4(lookahead=1.0))

        def send_too_close():
            sim.after_for_site("s1", 0.25, lambda: None)

        sim.at_site("s0", 1.0, send_too_close)
        with pytest.raises(LookaheadError):
            sim.run()

    def test_scheduling_into_past_raises(self):
        sim = ShardedSimulator(plan4())
        sim.at_site("s0", 5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at_site("s0", 1.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.at(1.0, lambda: None)


class TestGlobalEvents:
    def test_global_runs_at_consistent_cut(self):
        """At the cut every shard has executed exactly the events with
        timestamp <= cut — none beyond it."""
        sim = ShardedSimulator(plan4(lookahead=1.0))
        executed = {site: [] for site in SITES}
        for site in SITES:
            def tick(site=site):
                executed[site].append(sim.now)
                if sim.now < 10.0:
                    sim.after(0.3, lambda: tick(site))
            sim.at_site(site, 0.0, lambda site=site: tick(site))

        cut_view = {}
        sim.at_global(5.0, lambda: cut_view.update(
            {site: list(times) for site, times in executed.items()}))
        sim.run()
        assert cut_view  # the probe ran
        for site in SITES:
            assert cut_view[site], site
            assert max(cut_view[site]) <= 5.0
            # Complete up to the cut: every tick due by 5.0 was seen.
            assert cut_view[site] == [t for t in executed[site] if t <= 5.0]

    def test_global_from_inside_window_raises(self):
        sim = ShardedSimulator(plan4(lookahead=1.0))
        sim.at_site("s0", 1.0, lambda: sim.at_global(1.1, lambda: None))
        with pytest.raises(LookaheadError):
            sim.run()

    def test_global_before_barrier_time_raises(self):
        sim = ShardedSimulator(plan4())
        sim.at_site("s0", 3.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at_global(1.0, lambda: None)


class TestCallInSite:
    def test_setup_context_routes_schedules(self):
        sim = ShardedSimulator(plan4())
        ran = []
        value = sim.call_in_site(
            "s3", lambda: (sim.after(2.0, lambda: ran.append(sim.now)),
                           "built")[1])
        assert value == "built"
        sim.run()
        assert ran == [2.0]

    def test_noop_on_owning_shard(self):
        sim = ShardedSimulator(plan4())
        results = []
        sim.at_site("s1", 1.0,
                    lambda: results.append(
                        sim.call_in_site("s1", lambda: "ok")))
        sim.run()
        assert results == ["ok"]

    def test_cross_shard_call_raises(self):
        sim = ShardedSimulator(plan4())
        sim.at_site("s0", 1.0,
                    lambda: sim.call_in_site("s1", lambda: None))
        with pytest.raises(SimulationError):
            sim.run()


class TestDeferToEventEnd:
    def test_fifo_within_event(self):
        sim = ShardedSimulator(plan4())
        order = []

        def action():
            assert sim.defer_to_event_end(lambda: order.append("d1"))
            assert sim.defer_to_event_end(lambda: order.append("d2"))
            order.append("body")

        sim.at_site("s0", 1.0, action)
        sim.run()
        assert order == ["body", "d1", "d2"]

    def test_false_outside_events(self):
        sim = ShardedSimulator(plan4())
        assert sim.defer_to_event_end(lambda: None) is False

    def test_deferrals_are_per_shard(self):
        """A deferral on one shard never leaks into another shard's
        same-round events."""
        sim = ShardedSimulator(plan4())
        order = []

        def on_s0():
            sim.defer_to_event_end(lambda: order.append("s0-deferred"))
            order.append("s0")

        sim.at_site("s0", 1.0, on_s0)
        sim.at_site("s1", 1.0, lambda: order.append("s1"))
        sim.run()
        assert order.index("s0-deferred") == order.index("s0") + 1


class TestClocksAndRunLoops:
    def test_run_until_advances_every_clock(self):
        sim = ShardedSimulator(plan4())
        sim.at_site("s0", 1.0, lambda: None)
        sim.run_until(10.0)
        assert sim.now == 10.0
        assert all(sim.shard_clock(index) == 10.0 for index in range(4))

    def test_pending_counts_queues_and_mail(self):
        sim = ShardedSimulator(plan4())
        sim.at_site("s0", 1.0, lambda: None)
        sim.at_site("s1", 1.0, lambda: None)
        sim.at_global(5.0, lambda: None)
        assert sim.pending == 3
        sim.run()
        assert sim.pending == 0

    def test_step_executes_globally_earliest_event(self):
        sim = ShardedSimulator(plan4())
        ran = []
        sim.at_site("s2", 1.0, lambda: ran.append("early"))
        sim.at_site("s0", 2.0, lambda: ran.append("late"))
        assert sim.step() is True
        assert ran == ["early"]
        sim.run()
        assert ran == ["early", "late"]

    def test_max_steps_halts_between_rounds(self):
        sim = ShardedSimulator(plan4(lookahead=1.0))

        def forever():
            sim.after(0.5, forever)

        for site in SITES:
            sim.at_site(site, 0.0, forever)
        sim.run(max_steps=40)
        # Round-granular guard: it stops, possibly overshooting by at
        # most one window's worth of events.
        assert 40 <= sim.steps <= 40 + 4 * 3

    def test_queue_factory_override(self):
        sim = ShardedSimulator(plan4(), queue_factory=HeapEventQueue)
        ran = []
        sim.at_site("s0", 1.0, lambda: ran.append(1))
        sim.run()
        assert ran == [1]


def _ping_pong_workload(workers, shards=4, seed=3):
    """Cross-shard ping-pong + per-site local chains + one global cut.

    Exercises every code path whose ordering could conceivably depend
    on the worker schedule: mail, same-instant local events, a
    window-clipping global, and per-shard RNG draws.
    """
    plan = ShardPlan.round_robin(SITES, shards, 1.0)
    sim = ShardedSimulator(plan, seed=seed, workers=workers)
    sim.enable_trace()
    log = []

    def bounce(hops, here, there):
        def on_arrive():
            log.append((sim.now, here, hops))
            sim.rng.stream(f"noise:{here}").random()
            if hops > 0:
                sim.after_for_site(there, 1.25,
                                   lambda: bounce(hops - 1, there, here)(),
                                   label=f"bounce:{there}")
        return on_arrive

    sim.at_site("s0", 0.5, bounce(6, "s0", "s2"), label="bounce:s0")
    sim.at_site("s1", 0.5, bounce(6, "s1", "s3"), label="bounce:s1")
    for site in SITES:
        def chain(site=site, left=5):
            log.append((sim.now, site, "chain"))
            if left > 1:
                sim.after(0.4, lambda: chain(site, left - 1),
                          label=f"chain:{site}")
        sim.at_site(site, 0.2, lambda site=site: chain(site),
                    label=f"chain:{site}")
    sim.at_global(3.0, lambda: log.append((sim.now, "*", "cut")),
                  label="cut")
    sim.run()
    return sim, log


class TestDeterminismContract:
    def test_fingerprint_invariant_across_worker_counts(self):
        baseline, base_log = _ping_pong_workload(workers=1)
        for workers in (2, 3, 4, 8):
            sim, log = _ping_pong_workload(workers=workers)
            assert sim.trace_fingerprint() == baseline.trace_fingerprint()
            assert sim.steps == baseline.steps
            # Event *content* matches too, not just the hashes: the log
            # is only reordered across shards, never within one.
            assert sorted(log) == sorted(base_log)

    def test_different_seeds_do_not_change_schedule_fingerprint(self):
        """The fingerprint covers (time, label) pairs; this workload's
        schedule is seed-independent, so seeds must not perturb it —
        per-shard RNG draws happen but never feed back into timing."""
        a, _ = _ping_pong_workload(workers=1, seed=3)
        b, _ = _ping_pong_workload(workers=1, seed=4)
        assert a.trace_fingerprint() == b.trace_fingerprint()

    def test_fingerprint_detects_schedule_divergence(self):
        sim_a, _ = _ping_pong_workload(workers=1)
        plan = ShardPlan.round_robin(SITES, 4, 1.0)
        sim_b = ShardedSimulator(plan, workers=1)
        sim_b.enable_trace()
        sim_b.at_site("s0", 1.0, lambda: None, label="other")
        sim_b.run()
        assert sim_a.trace_fingerprint() != sim_b.trace_fingerprint()

    def test_single_shard_matches_plain_kernel_trace(self):
        """shards=1 must execute the exact event sequence the classic
        kernel does (same total order, same labels)."""
        def drive(sim):
            sim.enable_trace()
            ran = []

            def tick(left):
                ran.append(sim.now)
                if left:
                    sim.after(0.7, lambda: tick(left - 1), label="tick")
            sim.at(0.3, lambda: tick(5), label="tick")
            sim.at(0.3, lambda: None, priority=-1, label="first")
            sim.run()
            return sim.trace

        plain = drive(Simulator())
        sharded = drive(
            ShardedSimulator(ShardPlan({"only": 0}, 1.0)))
        assert sharded == plain

    def test_per_shard_rng_streams_are_stable(self):
        """Shard sub-seeding is part of the executor contract: the
        parallel runner reconstructs these exact streams in workers."""
        from repro.sim.random import RandomStreams
        plan = ShardPlan.round_robin(SITES, 4, 1.0)
        sim = ShardedSimulator(plan, seed=11)
        draws = {}
        for site in SITES:
            def draw(site=site):
                draws[site] = sim.rng.stream(f"noise:{site}").random()
            sim.at_site(site, 1.0, draw)
        sim.run()
        for index, site in enumerate(SITES):
            expected = RandomStreams(11).fork(f"shard:{index}") \
                .stream(f"noise:{site}").random()
            assert draws[site] == expected

    def test_trace_requires_enable(self):
        sim = ShardedSimulator(plan4())
        with pytest.raises(SimulationError):
            sim.trace_fingerprint()
        with pytest.raises(SimulationError):
            _ = sim.trace

    def test_trace_limit_zero_keeps_fingerprint_only(self):
        plan = ShardPlan.round_robin(SITES, 4, 1.0)
        sim = ShardedSimulator(plan)
        sim.enable_trace(limit=0)
        sim.at_site("s0", 1.0, lambda: None, label="x")
        sim.run()
        assert sim.trace == []
        full = ShardedSimulator(plan)
        full.enable_trace()
        full.at_site("s0", 1.0, lambda: None, label="x")
        full.run()
        assert sim.trace_fingerprint() == full.trace_fingerprint()
