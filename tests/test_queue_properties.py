"""Property tests for the calendar event queue, the Event back-reference
lifecycle, and the defer_to_event_end same-instant ordering contract.

The calendar queue's correctness claim is *exact order parity* with the
binary heap: for any interleaving of pushes (any times — including into
days the calendar already passed — any priorities, ties), pops,
cancellations and compactions, both implementations emit the identical
event sequence. Hypothesis drives random interleavings against the
:class:`HeapEventQueue` reference.
"""

import gc
import weakref

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.sim.events import (
    CalendarEventQueue,
    EventQueue,
    HeapEventQueue,
    Event,
)
from repro.sim.kernel import Simulator
from repro.sim.shard import ShardPlan, ShardedSimulator


def noop():
    pass


# One random operation: (kind, value). Times deliberately span several
# wheel laps of the smallest geometry below and reach the overflow heap
# of the default one.
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"),
                  st.tuples(st.floats(min_value=0.0, max_value=400.0,
                                      allow_nan=False, width=32),
                            st.integers(min_value=-2, max_value=2))),
        st.tuples(st.just("pop"), st.none()),
        st.tuples(st.just("pop_if_due"),
                  st.floats(min_value=0.0, max_value=400.0,
                            allow_nan=False, width=32)),
        st.tuples(st.just("peek"), st.none()),
        st.tuples(st.just("cancel"), st.integers(min_value=0)),
        st.tuples(st.just("compact"), st.none()),
    ),
    min_size=1, max_size=200)

_geometries = st.sampled_from([
    {},                                      # default calendar
    {"day_width": 0.5, "wheel_days": 4},     # many laps, tiny wheel
    {"day_width": 7.0, "wheel_days": 2},     # wide days, minimal wheel
    {"day_width": 0.125, "wheel_days": 512},
])


def _apply(queue, ops):
    """Run *ops* against *queue*; return the observable event stream."""
    observed = []
    handles = []
    for kind, value in ops:
        if kind == "push":
            time, priority = value
            handles.append(queue.push(time, noop, priority,
                                      label=f"e{len(handles)}"))
        elif kind == "pop":
            event = queue.pop()
            observed.append(("pop", None) if event is None else
                            ("pop", (event.time, event.priority,
                                     event.label)))
        elif kind == "pop_if_due":
            event = queue.pop_if_due(value)
            observed.append(("due", None) if event is None else
                            ("due", (event.time, event.priority,
                                     event.label)))
        elif kind == "peek":
            observed.append(("peek", queue.peek_time()))
        elif kind == "cancel":
            if handles:
                handles[value % len(handles)].cancel()
        elif kind == "compact":
            queue.compact()
        observed.append(("len", len(queue)))
    # Drain what's left: the full residual order must match too.
    while True:
        event = queue.pop()
        if event is None:
            break
        observed.append(("drain", (event.time, event.priority,
                                   event.label)))
    return observed


class TestCalendarHeapParity:
    @given(ops=_ops, geometry=_geometries)
    @settings(max_examples=300, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_identical_event_streams(self, ops, geometry):
        assert _apply(CalendarEventQueue(**geometry), ops) == \
            _apply(HeapEventQueue(), ops)

    @given(times=st.lists(st.floats(min_value=0.0, max_value=1000.0,
                                    allow_nan=False),
                          min_size=1, max_size=80),
           geometry=_geometries)
    @settings(max_examples=150, deadline=None)
    def test_pure_push_then_drain_is_sorted(self, times, geometry):
        queue = CalendarEventQueue(**geometry)
        for time in times:
            queue.push(time, noop)
        drained = []
        while (event := queue.pop()) is not None:
            drained.append((event.time, event.seq))
        assert drained == sorted(drained)
        assert len(drained) == len(times)

    def test_same_instant_fifo_across_tiers(self):
        """Ties break by seq even when the tied events took different
        storage paths (current run vs wheel vs overflow)."""
        queue = CalendarEventQueue(day_width=1.0, wheel_days=4)
        # Force the calendar forward so 2.0 is a passed day for the
        # second batch of pushes.
        queue.push(2.0, noop, label="a")
        queue.push(6.5, noop, label="far")
        assert queue.pop().label == "a"        # calendar now at day 2
        queue.push(2.0, noop, label="b")       # passed-day insert
        queue.push(2.0, noop, label="c")
        order = []
        while (event := queue.pop_if_due(10.0)) is not None:
            order.append(event.label)
        assert order == ["b", "c", "far"]

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            CalendarEventQueue(day_width=0.0)
        with pytest.raises(ValueError):
            CalendarEventQueue(wheel_days=1)

    def test_default_queue_is_the_calendar(self):
        assert EventQueue is CalendarEventQueue


class TestEventQueueBackref:
    """The Event.queue back-reference lifecycle: cleared on *every*
    removal path, so a held event handle never pins a dead queue."""

    @pytest.mark.parametrize("factory", [CalendarEventQueue,
                                         HeapEventQueue])
    def test_cleared_on_pop(self, factory):
        queue = factory()
        event = queue.push(1.0, noop)
        assert event.queue is queue
        assert queue.pop() is event
        assert event.queue is None

    @pytest.mark.parametrize("factory", [CalendarEventQueue,
                                         HeapEventQueue])
    def test_cleared_on_pop_if_due(self, factory):
        queue = factory()
        event = queue.push(1.0, noop)
        assert queue.pop_if_due(2.0) is event
        assert event.queue is None

    @pytest.mark.parametrize("factory", [CalendarEventQueue,
                                         HeapEventQueue])
    def test_cleared_on_lazy_discard(self, factory):
        queue = factory()
        corpse = queue.push(1.0, noop)
        live = queue.push(2.0, noop)
        corpse.cancel()
        assert queue.pop() is live       # discards the corpse on the way
        assert corpse.queue is None

    @pytest.mark.parametrize("factory", [CalendarEventQueue,
                                         HeapEventQueue])
    def test_cleared_on_compaction(self, factory):
        queue = factory()
        corpses = [queue.push(float(index), noop) for index in range(10)]
        keeper = queue.push(99.0, noop)
        for corpse in corpses:
            corpse.cancel()
        queue.compact()
        assert all(corpse.queue is None for corpse in corpses)
        assert keeper.queue is queue

    def test_cleared_on_calendar_refill_of_cancelled_bucket(self):
        queue = CalendarEventQueue(day_width=1.0, wheel_days=8)
        corpse = queue.push(3.5, noop)       # lands in a wheel bucket
        live = queue.push(3.6, noop)
        corpse.cancel()
        assert queue.pop() is live           # refill sweeps the corpse
        assert corpse.queue is None

    @pytest.mark.parametrize("factory", [CalendarEventQueue,
                                         HeapEventQueue])
    def test_cleared_on_clear(self, factory):
        queue = factory()
        events = [queue.push(float(index), noop) for index in range(5)]
        queue.clear()
        assert all(event.queue is None for event in events)
        assert len(queue) == 0

    @pytest.mark.parametrize("factory", [CalendarEventQueue,
                                         HeapEventQueue])
    def test_popped_handle_does_not_pin_queue(self, factory):
        """gc regression: a long-lived event handle (timers hold them)
        must not keep its queue — and everything the queue references —
        alive after the event left the store."""
        queue = factory()
        held = [queue.push(float(index), noop) for index in range(20)]
        held[3].cancel()
        while queue.pop() is not None:
            pass
        ref = weakref.ref(queue)
        del queue
        gc.collect()
        assert ref() is None
        assert all(event.queue is None for event in held)

    def test_cancelled_handle_does_not_pin_queue_after_compact(self):
        queue = CalendarEventQueue()
        held = [queue.push(float(index), noop) for index in range(20)]
        for event in held:
            event.cancel()
        queue.compact()
        ref = weakref.ref(queue)
        del queue
        gc.collect()
        assert ref() is None

    def test_cancel_after_removal_is_safe(self):
        """cancel() on an already-popped handle must not corrupt the
        (now detached) queue's cancelled-entry accounting."""
        queue = CalendarEventQueue()
        event = queue.push(1.0, noop)
        queue.push(2.0, noop)
        assert queue.pop() is event
        event.cancel()                   # no queue: no count to corrupt
        assert len(queue) == 1
        assert queue.pop().time == 2.0

    def test_standalone_event_cancel(self):
        event = Event(1.0, 0, 0, noop)
        event.cancel()
        assert event.cancelled


def _defer_scenario(sim):
    """An event whose deferred hook schedules a *same-instant* event.

    The contract: the deferred hooks run FIFO right after the body (at
    the same virtual instant), and an event the hook schedules for that
    same instant still executes — after the hooks, in (time, priority,
    seq) order relative to other same-instant events.
    """
    sim.enable_trace()
    order = []

    def body():
        order.append("body")
        sim.defer_to_event_end(lambda: (
            order.append("hook1"),
            sim.at(5.0, lambda: order.append("same-instant"),
                   label="same-instant")))
        sim.defer_to_event_end(lambda: (
            order.append("hook2"),
            sim.defer_to_event_end(lambda: order.append("nested"))))

    sim.at(5.0, body, label="body")
    sim.at(5.0, lambda: order.append("sibling"), label="sibling")
    sim.at(6.0, lambda: order.append("later"), label="later")
    sim.run()
    return order, sim.trace_fingerprint()


class TestDeferSameInstantOrdering:
    EXPECTED = ["body", "hook1", "hook2", "nested", "sibling",
                "same-instant", "later"]

    @pytest.mark.parametrize("factory", [CalendarEventQueue,
                                         HeapEventQueue])
    def test_order_on_plain_kernel(self, factory):
        order, _ = _defer_scenario(Simulator(queue_factory=factory))
        assert order == self.EXPECTED

    def test_fingerprint_stable_across_queue_implementations(self):
        _, calendar = _defer_scenario(
            Simulator(queue_factory=CalendarEventQueue))
        _, heap = _defer_scenario(Simulator(queue_factory=HeapEventQueue))
        assert calendar == heap

    def test_order_on_sharded_kernel(self):
        sim = ShardedSimulator(ShardPlan({"only": 0}, 1.0))
        order, _ = _defer_scenario(sim)
        assert order == self.EXPECTED

    def test_run_until_boundary_does_not_leak_deferrals(self):
        """Hooks deferred by the last event before a run_until boundary
        run at that instant, not at the next run call."""
        sim = Simulator()
        order = []
        sim.at(1.0, lambda: sim.defer_to_event_end(
            lambda: order.append(("hook", sim.now))))
        sim.run_until(1.0)
        assert order == [("hook", 1.0)]
        sim.at(2.0, lambda: order.append(("next", sim.now)))
        sim.run()
        assert order == [("hook", 1.0), ("next", 2.0)]
