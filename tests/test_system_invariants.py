"""Unit tests for the DvPSystem façade and the conservation auditor."""

from collections import Counter

import pytest

from repro.core.domain import CounterDomain, TokenSetDomain
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    TransactionSpec,
)
from repro.net.link import LinkConfig
from repro.net.sync import SynchronousNetwork


class TestSystemConfig:
    def test_duplicate_sites_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(sites=["A", "A"])

    def test_empty_sites_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(sites=[])

    def test_conc2_selects_synchronous_network(self):
        system = DvPSystem(SystemConfig(sites=["A", "B"], cc="conc2"))
        assert isinstance(system.network, SynchronousNetwork)

    def test_explicit_synchronous_override(self):
        system = DvPSystem(SystemConfig(sites=["A", "B"], cc="conc1",
                                        synchronous=True))
        assert isinstance(system.network, SynchronousNetwork)

    def test_conc1_uses_plain_network(self):
        system = DvPSystem(SystemConfig(sites=["A", "B"], cc="conc1"))
        assert not isinstance(system.network, SynchronousNetwork)


class TestAddItem:
    def test_explicit_split(self):
        system = DvPSystem(SystemConfig(sites=["A", "B"]))
        system.add_item("x", CounterDomain(), split={"A": 10, "B": 4})
        assert system.fragment_values("x") == {"A": 10, "B": 4}
        assert system.auditor.expected("x") == 14

    def test_partial_split_fills_zero(self):
        system = DvPSystem(SystemConfig(sites=["A", "B", "C"]))
        system.add_item("x", CounterDomain(), split={"A": 5})
        assert system.fragment_values("x") == {"A": 5, "B": 0, "C": 0}

    def test_even_split_with_remainder(self):
        system = DvPSystem(SystemConfig(sites=["A", "B", "C"]))
        system.add_item("x", CounterDomain(), total=10)
        values = system.fragment_values("x")
        assert sum(values.values()) == 10
        assert max(values.values()) - min(values.values()) <= 1

    def test_split_unknown_site_rejected(self):
        system = DvPSystem(SystemConfig(sites=["A"]))
        with pytest.raises(KeyError):
            system.add_item("x", CounterDomain(), split={"Z": 3})

    def test_requires_split_or_total(self):
        system = DvPSystem(SystemConfig(sites=["A"]))
        with pytest.raises(ValueError):
            system.add_item("x", CounterDomain())

    def test_token_domain_item(self):
        system = DvPSystem(SystemConfig(sites=["A", "B"]))
        system.add_item("coupons", TokenSetDomain(),
                        split={"A": Counter({"gold": 2}),
                               "B": Counter({"silver": 1})})
        assert system.auditor.expected("coupons") == \
            Counter({"gold": 2, "silver": 1})


class TestAuditor:
    def build(self):
        system = DvPSystem(SystemConfig(
            sites=["A", "B"], txn_timeout=10.0,
            link=LinkConfig(base_delay=1.0)))
        system.add_item("x", CounterDomain(), total=20)
        return system

    def test_expected_tracks_commits(self):
        system = self.build()
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 4),)))
        system.submit("B", TransactionSpec(ops=(IncrementOp("x", 10),)))
        system.run_for(5.0)
        assert system.auditor.expected("x") == 26

    def test_aborts_do_not_change_expected(self):
        system = self.build()
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 500),)))
        system.run_for(50.0)
        assert system.auditor.expected("x") == 20
        system.auditor.assert_ok()

    def test_report_fields(self):
        system = self.build()
        report = system.auditor.check("x")
        assert report.ok
        assert report.fragments_total == 20
        assert report.live_vm_total == 0
        assert report.per_site == {"A": 10, "B": 10}
        assert "OK" in str(report)

    def test_assert_ok_raises_on_violation(self):
        system = self.build()
        # Corrupt a fragment behind the auditor's back.
        system.sites["A"].fragments.write("x", 999, 0)
        with pytest.raises(AssertionError):
            system.auditor.assert_ok()

    def test_live_vm_counted_once_despite_lost_ack(self):
        # A Vm accepted at the receiver whose ack was lost is still
        # retransmitted by the sender; the auditor must count the value
        # exactly once (in the receiver's fragment).
        system = DvPSystem(SystemConfig(
            sites=["A", "B"], txn_timeout=30.0, retransmit_period=2.0,
            link=LinkConfig(base_delay=1.0)))
        system.add_item("x", CounterDomain(), split={"A": 0, "B": 20})
        results = []
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 5),)),
                      results.append)
        system.run_for(2.5)  # request honored at B, Vm accepted at A
        # Pretend the ack back to B was lost: clear B's ack state.
        channel = system.sites["B"].vm.out_channel("A")
        channel.cumulative_acked = 0
        system.auditor.assert_ok()  # would double count if buggy
        system.run_for(100.0)
        system.auditor.assert_ok()

    def test_commits_seen_counter(self):
        system = self.build()
        system.submit("A", TransactionSpec(ops=(IncrementOp("x", 1),)))
        system.run_for(2.0)
        assert system.auditor.commits_seen == 1


class TestSystemRunning:
    def test_result_hook_invoked(self):
        system = DvPSystem(SystemConfig(sites=["A"]))
        system.add_item("x", CounterDomain(), total=5)
        seen = []
        system.add_result_hook(seen.append)
        system.submit("A", TransactionSpec(ops=(IncrementOp("x", 1),)))
        system.run_for(1.0)
        assert len(seen) == 1

    def test_committed_and_aborted_views(self):
        system = DvPSystem(SystemConfig(sites=["A"], txn_timeout=5.0))
        system.add_item("x", CounterDomain(), total=5)
        system.submit("A", TransactionSpec(ops=(IncrementOp("x", 1),)))
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 99),)))
        system.run_for(20.0)
        assert len(system.committed()) == 1
        assert len(system.aborted()) == 1

    def test_drain_reaches_quiescence(self):
        system = DvPSystem(SystemConfig(sites=["A", "B"],
                                        link=LinkConfig(base_delay=1.0)))
        system.add_item("x", CounterDomain(), total=10)
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 8),)))
        system.drain()
        assert system.sim.pending == 0 or all(
            site.vm.unacked_count() == 0
            for site in system.sites.values())
