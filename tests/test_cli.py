"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults_to_quick(self):
        args = build_parser().parse_args(["run", "E1"])
        assert args.experiment == "E1"
        assert not args.full
        assert args.jobs == 1
        assert not args.no_cache
        assert args.cache_dir == ".repro-cache"

    def test_run_parallel_flags(self):
        args = build_parser().parse_args(
            ["run", "E6", "--jobs", "4", "--no-cache",
             "--cache-dir", "/tmp/elsewhere"])
        assert args.jobs == 4
        assert args.no_cache
        assert args.cache_dir == "/tmp/elsewhere"

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.budget == 200
        assert args.seed == 0
        assert not args.shrink
        assert args.replay is None
        assert args.inject is None
        assert args.repro_dir == "tests/repros"
        assert args.sites == 4

    def test_chaos_inject_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--inject", "bogus"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E12" in out

    def test_run_quick(self, capsys):
        assert main(["run", "E5", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "recovery independence" in out

    def test_run_cached_replay(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(["run", "E5", "--cache-dir", cache_dir]) == 0
        cold = capsys.readouterr()
        assert "0 cached, 4 computed" in cold.err
        assert main(["run", "E5", "--cache-dir", cache_dir]) == 0
        warm = capsys.readouterr()
        assert "4 cached, 0 computed" in warm.err
        assert warm.out == cold.out

    def test_run_unknown(self, capsys):
        assert main(["run", "E99", "--no-cache"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_all_quick(self, capsys):
        assert main(["run", "all", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "E1:" in out and "E12:" in out

    def test_chaos_explore_clean_and_deterministic(self, capsys):
        assert main(["chaos", "--budget", "4", "--seed", "7"]) == 0
        first = capsys.readouterr().out
        assert "plans run: 4  failing: 0" in first
        assert "exploration digest:" in first
        assert main(["chaos", "--budget", "4", "--seed", "7"]) == 0
        assert capsys.readouterr().out == first

    def test_chaos_bad_budget(self, capsys):
        assert main(["chaos", "--budget", "0"]) == 2
        assert "--budget" in capsys.readouterr().err

    def test_chaos_inject_shrink_and_replay(self, capsys, tmp_path):
        from repro.core import fragments

        repro_dir = str(tmp_path / "repros")
        assert main(["chaos", "--budget", "1", "--seed", "7",
                     "--inject", "crash", "--shrink",
                     "--repro-dir", repro_dir]) == 1
        out = capsys.readouterr().out
        assert fragments.test_leak() is None  # disarmed on exit
        assert "failing: 1" in out
        assert "repro written:" in out
        artifacts = list((tmp_path / "repros").glob("*.json"))
        assert len(artifacts) == 1
        # The frozen artifact replays the failure bit-identically...
        assert main(["chaos", "--replay", str(artifacts[0])]) == 1
        assert "still failing: reproduced" in capsys.readouterr().out
        # ...and the unshrunk exploration without --shrink exits 1 too.
        assert main(["chaos", "--budget", "1", "--seed", "7",
                     "--inject", "crash"]) == 1
        assert "--shrink" in capsys.readouterr().out
