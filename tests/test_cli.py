"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults_to_quick(self):
        args = build_parser().parse_args(["run", "E1"])
        assert args.experiment == "E1"
        assert not args.full

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.sites == 4
        assert args.loss == 0.3


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E12" in out

    def test_run_quick(self, capsys):
        assert main(["run", "E5"]) == 0
        out = capsys.readouterr().out
        assert "recovery independence" in out

    def test_run_unknown(self, capsys):
        assert main(["run", "E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_all_quick(self, capsys):
        assert main(["run", "all"]) == 0
        out = capsys.readouterr().out
        assert "E1:" in out and "E12:" in out

    def test_chaos_audits_clean(self, capsys):
        assert main(["chaos", "--seed", "2", "--duration", "80",
                     "--loss", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "[OK]" in out
        assert "max decision time" in out
