"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults_to_quick(self):
        args = build_parser().parse_args(["run", "E1"])
        assert args.experiment == "E1"
        assert not args.full
        assert args.jobs == 1
        assert not args.no_cache
        assert args.cache_dir == ".repro-cache"

    def test_run_parallel_flags(self):
        args = build_parser().parse_args(
            ["run", "E6", "--jobs", "4", "--no-cache",
             "--cache-dir", "/tmp/elsewhere"])
        assert args.jobs == 4
        assert args.no_cache
        assert args.cache_dir == "/tmp/elsewhere"

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.sites == 4
        assert args.loss == 0.3


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E12" in out

    def test_run_quick(self, capsys):
        assert main(["run", "E5", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "recovery independence" in out

    def test_run_cached_replay(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(["run", "E5", "--cache-dir", cache_dir]) == 0
        cold = capsys.readouterr()
        assert "0 cached, 4 computed" in cold.err
        assert main(["run", "E5", "--cache-dir", cache_dir]) == 0
        warm = capsys.readouterr()
        assert "4 cached, 0 computed" in warm.err
        assert warm.out == cold.out

    def test_run_unknown(self, capsys):
        assert main(["run", "E99", "--no-cache"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_all_quick(self, capsys):
        assert main(["run", "all", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "E1:" in out and "E12:" in out

    def test_chaos_audits_clean(self, capsys):
        assert main(["chaos", "--seed", "2", "--duration", "80",
                     "--loss", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "[OK]" in out
        assert "max decision time" in out
