"""Tests for the two-sided bounded quantity (free/used dual encoding)."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps.bounded import BoundedQuantity
from repro.core.system import DvPSystem, SystemConfig
from repro.net.link import LinkConfig


def build(capacity=30, used_split=None, sites=("A", "B", "C"), seed=37):
    system = DvPSystem(SystemConfig(
        sites=list(sites), seed=seed, txn_timeout=10.0,
        link=LinkConfig(base_delay=1.0)))
    quantity = BoundedQuantity(system, "slots", capacity,
                               used_split=used_split)
    return system, quantity


class TestConstruction:
    def test_negative_capacity_rejected(self):
        system = DvPSystem(SystemConfig(sites=["A"]))
        with pytest.raises(ValueError):
            BoundedQuantity(system, "q", -1)

    def test_initial_usage_cannot_exceed_capacity(self):
        system = DvPSystem(SystemConfig(sites=["A"]))
        with pytest.raises(ValueError):
            BoundedQuantity(system, "q", 5, used_split={"A": 6})

    def test_free_pool_is_capacity_minus_used(self):
        system, quantity = build(capacity=30, used_split={"A": 6})
        total_free = sum(quantity.local_free(site)
                         for site in ("A", "B", "C"))
        assert total_free == 24
        assert quantity.audit()


class TestAcquireRelease:
    def test_acquire_consumes_free(self):
        system, quantity = build()
        results = []
        quantity.acquire("A", 4, results.append)
        system.run_for(5.0)
        assert results and results[0].committed
        assert quantity.local_used("A") == 4
        assert quantity.audit()

    def test_acquire_beyond_capacity_aborts(self):
        system, quantity = build(capacity=10)
        results = []
        quantity.acquire("A", 11, results.append)
        system.run_for(60.0)
        assert results and not results[0].committed
        assert quantity.audit()

    def test_release_requires_prior_acquire(self):
        system, quantity = build()
        results = []
        quantity.release("A", 3, results.append)
        system.run_for(60.0)
        assert results and not results[0].committed  # nothing used yet
        assert quantity.audit()

    def test_acquire_then_release_round_trip(self):
        system, quantity = build()
        results = []
        quantity.acquire("B", 7, results.append)
        system.run_for(5.0)
        quantity.release("B", 7, results.append)
        system.run_for(5.0)
        assert all(result.committed for result in results)
        assert system.auditor.expected("slots.used") == 0
        assert system.auditor.expected("slots.free") == 30

    def test_acquire_gathers_free_capacity_remotely(self):
        system, quantity = build(capacity=30)
        results = []
        quantity.acquire("A", 25, results.append)  # A holds only 10
        system.run_for(30.0)
        assert results and results[0].committed
        assert quantity.audit()

    def test_utilization_read(self):
        system, quantity = build()
        quantity.acquire("A", 4)
        quantity.acquire("B", 6)
        system.run_for(10.0)
        results = []
        quantity.utilization("C", results.append)
        system.run_for(30.0)
        assert results and results[0].committed
        assert results[0].read_values["slots.used"] == 10


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=500),
       script=st.lists(
           st.tuples(st.sampled_from(["A", "B", "C"]),
                     st.sampled_from(["acquire", "release"]),
                     st.integers(min_value=1, max_value=12)),
           min_size=1, max_size=15))
def test_capacity_bound_never_violated(seed, script):
    """Property: whatever interleaving of acquires and releases runs,
    total usage stays within [0, capacity] and the pair conserves."""
    system, quantity = build(capacity=20, seed=seed)
    for index, (site, kind, amount) in enumerate(script):
        def fire(s=site, k=kind, a=amount):
            if k == "acquire":
                quantity.acquire(s, a)
            else:
                quantity.release(s, a)
        system.sim.at(index * 3.0 + 0.5, fire)
    system.run_for(len(script) * 3.0 + 60.0)
    system.run_for(200.0)
    assert quantity.audit()
    used = system.auditor.expected("slots.used")
    assert 0 <= used <= 20
