"""Chaos coverage for the Π(b) view tier (docs/READS.md): every oracle
must hold when a slice of the read workload is served from bounded-
staleness view caches under crashes, partitions, resharding, and
transport bundling — and with views *off* the whole engine must stay
byte-identical to the PR 9 seed (the digest pin below)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.chaos import ChaosConfig, FaultPlan, explore
from repro.chaos.oracles import EPSILON
from repro.chaos.runner import run_chaos
from repro.cli import build_parser
from repro.harness.chaos import config_from_args

#: (seed, serving router) per acceptance exploration — views ride the
#: direct path, the view-aware front-end, and a view-blind router.
ACCEPTANCE = [(7, None), (19, "view-aware"), (23, "least-queue")]

#: explore(ChaosConfig(), budget=6, master_seed=7) on the PR 9 engine.
#: Views off must keep producing this exact digest: the view service
#: re-interprets an existing workload roll range and never draws extra
#: randomness, so turning it off IS the seed read path, bit for bit.
PR9_DIGEST = \
    "14baf8e2ca857e8631fa3a0cc97d89fc62e88a6db1cdf502c6f488ace9423d85"


class TestExploreWithViews:
    @pytest.mark.parametrize("seed,serving", ACCEPTANCE)
    def test_budget_200_green(self, seed, serving):
        """The acceptance runs: full budget, views on, every oracle
        (conservation, serial, progress, and the view oracle's
        certificate-never-lies check)."""
        report = explore(ChaosConfig(views=12.0, serving=serving),
                         budget=200, master_seed=seed)
        assert report.ok, report.describe()

    def test_exploration_deterministic_with_views(self):
        config = ChaosConfig(views=12.0)
        first = explore(config, budget=6, master_seed=11)
        second = explore(config, budget=6, master_seed=11)
        assert first.digest() == second.digest()

    def test_views_off_is_still_the_pr9_engine(self):
        """The fingerprint-stability regression: with views=None the
        exploration digest equals the recorded pre-views digest."""
        report = explore(ChaosConfig(), budget=6, master_seed=7)
        assert report.ok, report.describe()
        assert report.digest() == PR9_DIGEST

    def test_describe_names_the_views(self):
        report = explore(ChaosConfig(views=9.0, view_refresh=3.0),
                         budget=1, master_seed=3)
        assert "views=9@3" in report.describe().splitlines()[0]
        plain = explore(ChaosConfig(), budget=1, master_seed=3)
        assert "views" not in plain.describe()


CRASH_PLAN = FaultPlan.from_dicts([
    {"at": 15.0, "kind": "crash", "site": "S1"},
    {"at": 35.0, "kind": "recover", "site": "S1"},
    {"at": 20.0, "kind": "partition", "groups": [["S0", "S1"]]},
    {"at": 40.0, "kind": "heal"},
])


class TestViewRunSemantics:
    def test_same_seed_and_plan_same_fingerprint(self):
        config = ChaosConfig(views=12.0)
        first = run_chaos(config, CRASH_PLAN, seed=42)
        second = run_chaos(config, CRASH_PLAN, seed=42)
        assert first.fingerprint == second.fingerprint
        assert not first.failed, first.failures

    def test_view_reads_actually_happen(self):
        """The re-interpreted roll range produces bounded reads and at
        least some commit with a certificate (else the acceptance
        sweeps prove nothing)."""
        config = ChaosConfig(views=12.0)
        result = run_chaos(config, FaultPlan.from_dicts([]), seed=9)
        assert not result.failed, result.failures
        certs = [cert for txn in result.system.results if txn.committed
                 for cert in txn.view_reads.values()]
        assert certs, "no committed view read in a healthy run"
        assert all(cert.staleness <= cert.bound + EPSILON
                   for cert in certs)

    def test_worker_invariant_on_sharded_kernel(self):
        def fingerprint(workers):
            config = ChaosConfig(views=12.0, shards=2,
                                 shard_workers=workers,
                                 partitioner="hash", replicas=2)
            result = run_chaos(config, CRASH_PLAN, seed=21)
            assert not result.failed, result.failures
            return result.fingerprint

        assert fingerprint(1) == fingerprint(2)


class TestStalenessBoundProperty:
    """The tentpole's safety claim, property-tested: under randomized
    faults, topology, and transport, a committed bounded-staleness
    read's certificate NEVER exceeds the reader's bound — every fault
    degrades to fallback fan-out, not to a lie."""

    @given(
        bound=st.floats(min_value=5.0, max_value=40.0),
        crash_at=st.floats(min_value=5.0, max_value=45.0),
        outage=st.floats(min_value=4.0, max_value=25.0),
        split_at=st.floats(min_value=5.0, max_value=45.0),
        cut=st.floats(min_value=4.0, max_value=25.0),
        hashed=st.booleans(),
        bundling=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=10, deadline=None)
    def test_no_committed_certificate_violates_its_bound(
            self, bound, crash_at, outage, split_at, cut, hashed,
            bundling, seed):
        config = ChaosConfig(
            views=bound,
            partitioner="hash" if hashed else "all",
            replicas=2 if hashed else None,
            bundle_flush_delay=1.5 if bundling else None)
        plan = FaultPlan.from_dicts([
            {"at": crash_at, "kind": "crash", "site": "S2"},
            {"at": crash_at + outage, "kind": "recover", "site": "S2"},
            {"at": split_at, "kind": "partition",
             "groups": [["S0", "S3"]]},
            {"at": split_at + cut, "kind": "heal"},
        ])
        result = run_chaos(config, plan, seed=seed)
        assert not result.failed, result.failures
        for txn in result.system.results:
            if not txn.committed:
                continue
            for item, cert in txn.view_reads.items():
                assert cert.staleness <= cert.bound + EPSILON, (
                    f"{txn.txn_id}[{item}]: staleness {cert.staleness}"
                    f" > bound {cert.bound}")


class TestConfigPlumbing:
    def test_old_artifacts_load_without_view_keys(self):
        data = ChaosConfig().to_dict()
        del data["views"]
        del data["view_refresh"]
        config = ChaosConfig.from_dict(data)
        assert config.views is None
        assert config.view_refresh == 4.0

    def test_cli_flags_reach_the_config(self):
        parser = build_parser()
        args = parser.parse_args([
            "chaos", "--views", "15", "--view-refresh", "5"])
        config = config_from_args(args)
        assert config.views == 15.0
        assert config.view_refresh == 5.0

    def test_default_is_the_seed_path(self):
        parser = build_parser()
        args = parser.parse_args(["chaos"])
        assert config_from_args(args).views is None
