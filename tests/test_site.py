"""Unit tests for site-level behaviour: request honoring, Vm
acceptance, checkpointing, read freezes, clock gossip."""

import pytest

from repro.core.domain import CounterDomain
from repro.core.messages import READ_MODE, TRANSFER_MODE, DataRequest
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    ReadFullOp,
    TransactionSpec,
)
from repro.net.link import LinkConfig
from repro.storage.records import CheckpointRecord, VmCreateRecord


def build(**kwargs):
    kwargs.setdefault("sites", ["A", "B", "C"])
    kwargs.setdefault("txn_timeout", 10.0)
    kwargs.setdefault("link", LinkConfig(base_delay=1.0))
    system = DvPSystem(SystemConfig(seed=4, **kwargs))
    system.add_item("x", CounterDomain(), total=90)
    return system


def fresh_ts(site) -> int:
    return site.clock.next()


class TestTransferHonoring:
    def test_honors_and_creates_vm(self):
        system = build()
        site_b = system.sites["B"]
        request = DataRequest(txn_id="A#1", origin="A", item="x",
                              mode=TRANSFER_MODE, need=10,
                              ts=fresh_ts(system.sites["A"]) + (1 << 40))
        site_b.handle_request(request)
        assert site_b.requests_honored == 1
        assert site_b.fragments.value("x") == 20
        assert site_b.vm.has_outstanding("x")
        # The create record hit the log before anything moved.
        records = [env.record for env in site_b.log.scan()]
        assert any(isinstance(record, VmCreateRecord)
                   for record in records)

    def test_ignores_unknown_item(self):
        system = build()
        site_b = system.sites["B"]
        site_b.handle_request(DataRequest("A#1", "A", "nope",
                                          TRANSFER_MODE, 10, 1 << 40))
        assert site_b.requests_ignored == 1

    def test_ignores_when_locked(self):
        system = build()
        site_b = system.sites["B"]
        site_b.locks.try_acquire_all("someone", {"x"})
        site_b.handle_request(DataRequest("A#1", "A", "x",
                                          TRANSFER_MODE, 10, 1 << 40))
        assert site_b.requests_honored == 0
        assert site_b.requests_ignored == 1

    def test_ignores_stale_timestamp_and_gossips(self):
        system = build()
        site_b = system.sites["B"]
        site_b.fragments.stamp("x", 1 << 50)
        site_b.handle_request(DataRequest("A#1", "A", "x",
                                          TRANSFER_MODE, 10, 5))
        assert site_b.requests_ignored == 1
        system.sim.run()
        # The advisory bumped A's clock past the winning stamp.
        assert system.sites["A"].clock.next() > (1 << 50)

    def test_ignores_zero_grant(self):
        system = build()
        site_b = system.sites["B"]
        site_b.fragments.write("x", 0, 0)
        site_b.handle_request(DataRequest("A#1", "A", "x",
                                          TRANSFER_MODE, 10, 1 << 40))
        assert site_b.requests_ignored == 1

    def test_lock_released_after_honor(self):
        system = build()
        site_b = system.sites["B"]
        site_b.handle_request(DataRequest("A#1", "A", "x",
                                          TRANSFER_MODE, 10, 1 << 40))
        assert site_b.locks.is_free("x")

    def test_fragment_stamped_with_requester_ts(self):
        system = build()
        site_b = system.sites["B"]
        ts = 1 << 40
        site_b.handle_request(DataRequest("A#1", "A", "x",
                                          TRANSFER_MODE, 10, ts))
        assert site_b.fragments.timestamp("x") == ts


class TestReadHonoring:
    def test_read_drains_full_fragment(self):
        system = build()
        site_b = system.sites["B"]
        site_b.handle_request(DataRequest("A#1", "A", "x",
                                          READ_MODE, None, 1 << 40))
        assert site_b.fragments.value("x") == 0
        assert site_b.requests_honored == 1

    def test_read_refused_with_outstanding_vm(self):
        system = build()
        site_b = system.sites["B"]
        # First create an outstanding Vm via a transfer honor.
        site_b.handle_request(DataRequest("A#1", "A", "x",
                                          TRANSFER_MODE, 10, 1 << 40))
        assert site_b.vm.has_outstanding("x")
        site_b.handle_request(DataRequest("A#2", "A", "x",
                                          READ_MODE, None, 2 << 40))
        assert site_b.requests_ignored == 1

    def test_read_freeze_holds_lock(self):
        system = build(read_freeze=8.0)
        site_b = system.sites["B"]
        site_b.handle_request(DataRequest("A#1", "A", "x",
                                          READ_MODE, None, 1 << 40))
        assert not site_b.locks.is_free("x")
        system.sim.run_until(system.sim.now + 8.5)
        assert site_b.locks.is_free("x")

    def test_freeze_defers_vm_acceptance(self):
        system = build(read_freeze=8.0)
        site_b = system.sites["B"]
        site_b.handle_request(DataRequest("A#1", "A", "x",
                                          READ_MODE, None, 1 << 40))
        # A Vm arriving for the frozen item stays pending...
        entry = system.sites["C"].vm.allocate_entry("B", "x", 4,
                                                    "transfer", "t")
        system.sites["C"].vm.register_created([entry])
        system.run_for(4.0)
        assert site_b.fragments.value("x") == 0
        # ...and is absorbed once the freeze lifts.
        system.run_for(30.0)
        assert site_b.fragments.value("x") == 4


class TestVmAcceptance:
    def test_unlocked_acceptance_increments_and_logs(self):
        system = build()
        entry = system.sites["A"].vm.allocate_entry("B", "x", 7,
                                                    "transfer", "t")
        system.sites["A"].vm.register_created([entry])
        system.run_for(10.0)
        # (No conservation audit here: the Vm was conjured out of thin
        # air for the test, not carved from A's fragment.)
        assert system.sites["B"].fragments.value("x") == 37
        records = [env.record for env in system.sites["B"].log.scan()]
        from repro.storage.records import VmAcceptRecord
        assert any(isinstance(record, VmAcceptRecord)
                   for record in records)

    def test_acceptance_while_locked_by_rds_stays_pending(self):
        system = build()
        site_b = system.sites["B"]
        site_b.locks.try_acquire_all("rds:frozen", {"x"})
        entry = system.sites["A"].vm.allocate_entry("B", "x", 7,
                                                    "transfer", "t")
        system.sites["A"].vm.register_created([entry])
        system.run_for(3.0)
        assert site_b.fragments.value("x") == 30  # still pending
        site_b.locks.release_all("rds:frozen")
        site_b.after_lock_release()
        assert site_b.fragments.value("x") == 37

    def test_active_transaction_absorbs_vm(self):
        system = build()
        results = []
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 60),)),
                      results.append)
        system.run_for(60.0)
        assert results and results[0].committed
        system.auditor.assert_ok()


class TestCheckpointing:
    def test_checkpoint_written_at_interval(self):
        system = build(checkpoint_interval=3)
        for _ in range(4):
            system.submit("A", TransactionSpec(
                ops=(IncrementOp("x", 1),)))
        system.run_for(5.0)
        records = [env.record for env in system.sites["A"].log.scan()]
        assert any(isinstance(record, CheckpointRecord)
                   for record in records)

    def test_checkpoint_contains_fragment_snapshot(self):
        system = build(checkpoint_interval=1)
        system.submit("A", TransactionSpec(ops=(IncrementOp("x", 5),)))
        system.run_for(5.0)
        checkpoint = system.sites["A"].log.last_matching(
            lambda record: isinstance(record, CheckpointRecord)).record
        assert dict(checkpoint.fragments)["x"] == 35

    def test_no_checkpoints_when_disabled(self):
        system = build(checkpoint_interval=0)
        for _ in range(10):
            system.submit("A", TransactionSpec(
                ops=(IncrementOp("x", 1),)))
        system.run_for(5.0)
        records = [env.record for env in system.sites["A"].log.scan()]
        assert not any(isinstance(record, CheckpointRecord)
                       for record in records)


class TestDeliverDispatch:
    def test_dead_site_hears_nothing(self):
        system = build()
        system.crash("B")
        site_b = system.sites["B"]
        before = site_b.requests_honored
        system.sites["A"].send_request("B", DataRequest(
            "A#1", "A", "x", TRANSFER_MODE, 10, 1 << 40))
        system.run_for(5.0)
        assert site_b.requests_honored == before

    def test_clock_observes_request_ts(self):
        system = build()
        site_b = system.sites["B"]
        system.sites["A"].send_request("B", DataRequest(
            "A#1", "A", "x", TRANSFER_MODE, 10, (123 << 16)))
        system.run_for(5.0)
        assert site_b.clock.counter >= 123
