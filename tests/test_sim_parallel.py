"""The OS-parallel shard executor: worker-count-invariant fingerprints,
canonical mail order, serial fallback, and the lookahead guard."""

import pytest

from repro.sim.events import HeapEventQueue
from repro.sim.kernel import LookaheadError
from repro.sim.parallel import run_parallel
from repro.sim.shard import ShardPlan

SITES = ["s0", "s1", "s2", "s3", "s4", "s5"]


class RingProgram:
    """Each site forwards a hop counter around the site ring (delay
    1.5 > lookahead 1.0) while running a local chain; the per-site RNG
    draws make shard sub-seeding observable in ``collect``."""

    def __init__(self, hops=8, chain=6):
        self.hops = hops
        self.chain = chain
        # Keyed by shard id: one host builds several shards against the
        # same program object.
        self._states = {}

    def build(self, sim, shard_id, sites, send):
        state = {"delivered": [], "draws": [], "local": 0}
        self._states[shard_id] = state

        def deliver(payload):
            site, hops = payload
            state["delivered"].append((sim.now, site, hops))
            state["draws"].append(
                sim.rng.stream(f"hop:{site}").random())
            if hops > 0:
                here = SITES.index(site)
                there = SITES[(here + 1) % len(SITES)]
                send(there, 1.5, (there, hops - 1),
                     label=f"hop:{there}")

        for site in sites:
            def tick(site=site, left=self.chain):
                state["local"] += 1
                if left > 1:
                    sim.after(0.4, lambda: tick(site, left - 1),
                              label=f"tick:{site}")
            sim.at(0.2, lambda site=site: tick(site),
                   label=f"tick:{site}")
        if "s0" in sites:
            sim.at(0.5, lambda: deliver(("s0", self.hops)),
                   label="kick")
        return deliver

    def collect(self, sim, shard_id):
        state = self._states[shard_id]
        return {"delivered": state["delivered"],
                "draws": state["draws"],
                "local": state["local"],
                "steps": sim.steps}


def ring_plan(shards=3):
    return ShardPlan.round_robin(SITES, shards, 1.0)


class TestWorkerInvariance:
    def test_serial_and_parallel_agree_exactly(self):
        results = {workers: run_parallel(ring_plan(), RingProgram(),
                                         seed=5, workers=workers)
                   for workers in (0, 1, 2, 3)}
        baseline = results[0]
        assert baseline.steps > 0
        for workers, result in results.items():
            assert result.fingerprint == baseline.fingerprint, workers
            assert result.shard_steps == baseline.shard_steps
            assert result.collected == baseline.collected

    def test_workers_capped_by_shard_count(self):
        result = run_parallel(ring_plan(shards=2), RingProgram(),
                              workers=8)
        assert result.workers == 2

    def test_single_shard_runs_serially(self):
        result = run_parallel(ring_plan(shards=1), RingProgram(),
                              workers=4)
        assert result.workers == 0
        assert result.shard_steps and result.shard_steps[0] > 0

    def test_collect_is_optional(self):
        class NoCollect:
            def build(self, sim, shard_id, sites, send):
                sim.at(1.0, lambda: None, label="x")
                return lambda payload: None

        result = run_parallel(ring_plan(), NoCollect(), workers=0)
        assert result.collected == [None, None, None]

    def test_queue_factory_passes_through(self):
        calendar = run_parallel(ring_plan(), RingProgram(), seed=5,
                                workers=0)
        heap = run_parallel(ring_plan(), RingProgram(), seed=5,
                            workers=0, queue_factory=HeapEventQueue)
        assert heap.fingerprint == calendar.fingerprint


class TestProtocol:
    def test_until_truncates_consistently(self):
        serial = run_parallel(ring_plan(), RingProgram(hops=40),
                              workers=0, until=6.0)
        parallel = run_parallel(ring_plan(), RingProgram(hops=40),
                                workers=3, until=6.0)
        full = run_parallel(ring_plan(), RingProgram(hops=40), workers=0)
        assert serial.fingerprint == parallel.fingerprint
        assert serial.steps < full.steps

    def test_short_cross_shard_send_raises(self):
        class TooClose:
            def build(self, sim, shard_id, sites, send):
                if "s0" in sites:
                    sim.at(1.0, lambda: send("s1", 0.25, "late"),
                           label="bad")
                return lambda payload: None

        with pytest.raises(LookaheadError):
            run_parallel(ring_plan(), TooClose(), workers=0)

    def test_local_send_below_lookahead_is_fine(self):
        class LocalFast:
            def build(self, sim, shard_id, sites, send):
                got = []
                if "s0" in sites:
                    # s0 and s3 share shard 0 under round-robin(3).
                    sim.at(1.0, lambda: send("s3", 0.1, "quick"),
                           label="send")
                return got.append

        result = run_parallel(ring_plan(), LocalFast(), workers=0)
        assert result.steps == 2

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            run_parallel(ring_plan(), RingProgram(), workers=-1)

    def test_mail_reaches_every_destination_handler(self):
        """Regression: batch delivery must bind each payload to *its*
        destination's deliver, not the batch's last one."""
        class FanOut:
            def __init__(self):
                self._received = {}

            def build(self, sim, shard_id, sites, send):
                received = self._received.setdefault(shard_id, [])
                if "s0" in sites:
                    def blast():
                        for site in SITES[1:]:
                            send(site, 2.0, f"for:{site}",
                                 label=f"blast:{site}")
                    sim.at(0.5, blast, label="blast")
                return lambda payload: received.append(payload)

            def collect(self, sim, shard_id):
                return sorted(self._received[shard_id])

        for workers in (0, 3):
            result = run_parallel(ring_plan(), FanOut(), workers=workers)
            flat = sorted(sum(result.collected, []))
            assert flat == sorted(f"for:{site}" for site in SITES[1:])
