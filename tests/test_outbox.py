"""Tests for the bundled transport (repro.net.outbox), ack coalescing,
and the O(1) channel accounting that replaced the per-send scans.

Unit layers use a bundled Network with plain list handlers (transport
semantics) and the two-site VmManager harness (protocol semantics);
system layers run whole DvP scenarios with bundling on and assert the
paper's invariants — conservation, identical outcomes — survive every
fault the bundle can hit as a unit (loss, partition, duplication).
"""

import pytest

from repro.core.domain import CounterDomain
from repro.core.messages import VmAck, VmTransfer
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import TransactionSpec, TransferOp
from repro.core.vm import VmManager
from repro.metrics.collector import Collector
from repro.net.link import LinkConfig
from repro.net.network import Network
from repro.net.outbox import BundlingConfig
from repro.sim.kernel import Simulator
from repro.workloads.airline import AirlineWorkload
from repro.workloads.base import OpMix, WorkloadConfig, WorkloadDriver


def make_network(flush_delay=0.0, sim=None, **link_kwargs):
    sim = sim or Simulator(1)
    network = Network(sim, LinkConfig(**link_kwargs),
                      bundling=BundlingConfig(flush_delay=flush_delay))
    inboxes: dict[str, list] = {}
    for name in ("A", "B", "C"):
        inboxes[name] = []
        network.register(name, inboxes[name].append)
    return sim, network, inboxes


def counter_total(sim, name):
    return sim.metrics.total(name)


class TestBundlingConfig:
    def test_negative_flush_delay_rejected(self):
        with pytest.raises(ValueError):
            BundlingConfig(flush_delay=-0.5)

    def test_default_is_same_instant_only(self):
        assert BundlingConfig().flush_delay == 0.0


class TestCoalescing:
    def test_same_instant_sends_share_one_envelope(self):
        sim, network, inboxes = make_network(base_delay=2.0)
        network.send("A", "B", "one")
        network.send("A", "B", "two")
        network.send("A", "B", "three")
        sim.run()
        assert counter_total(sim, "net.sent") == 1
        assert counter_total(sim, "net.delivered") == 1
        assert [env.payload for env in inboxes["B"]] == [
            "one", "two", "three"]

    def test_payload_counts_stay_per_logical_message(self):
        sim, network, _ = make_network(base_delay=2.0)
        network.send("A", "B", "x")
        network.send("A", "B", "y")
        sim.run()
        # sent_counts/delivered_counts stay per payload: every consumer
        # of the per-kind books sees logical messages, not envelopes.
        assert network.sent_counts["str"] == 2
        assert network.delivered_counts["str"] == 2

    def test_distinct_destinations_get_distinct_bundles(self):
        sim, network, inboxes = make_network(base_delay=2.0)
        network.send("A", "B", "to-b")
        network.send("A", "C", "to-c")
        sim.run()
        assert counter_total(sim, "net.sent") == 2
        assert inboxes["B"][0].payload == "to-b"
        assert inboxes["C"][0].payload == "to-c"

    def test_single_send_timing_matches_unbundled(self):
        sim_b, network_b, inboxes_b = make_network(base_delay=2.0)
        network_b.send("A", "B", "solo")
        sim_b.run()
        sim_p = Simulator(1)
        plain = Network(sim_p, LinkConfig(base_delay=2.0))
        got: list = []
        plain.register("A", got.append)
        plain.register("B", got.append)
        plain.send("A", "B", "solo")
        sim_p.run()
        assert sim_b.now == sim_p.now == 2.0
        assert inboxes_b["B"][0].payload == got[0].payload

    def test_flush_window_collects_later_sends(self):
        sim, network, inboxes = make_network(flush_delay=5.0,
                                             base_delay=2.0)
        network.send("A", "B", "first")
        sim.at(3.0, lambda: network.send("A", "B", "second"))
        sim.run()
        assert counter_total(sim, "net.sent") == 1
        assert [env.payload for env in inboxes["B"]] == ["first", "second"]
        # One delivery at open + flush + delay.
        assert sim.now == 7.0

    def test_send_after_window_opens_new_bundle(self):
        sim, network, inboxes = make_network(flush_delay=1.0,
                                             base_delay=5.0)
        network.send("A", "B", "early")
        # The first bundle departs at t=1 but lands at t=6; a send at
        # t=3 is past the window and must open a second envelope.
        sim.at(3.0, lambda: network.send("A", "B", "late"))
        sim.run()
        assert counter_total(sim, "net.sent") == 2
        assert [env.payload for env in inboxes["B"]] == ["early", "late"]

    def test_send_after_delivery_opens_new_bundle(self):
        sim, network, inboxes = make_network(base_delay=2.0)
        network.send("A", "B", "first")
        sim.run()
        network.send("A", "B", "second")
        sim.run()
        assert counter_total(sim, "net.sent") == 2
        assert len(inboxes["B"]) == 2

    def test_broadcast_bundles_per_destination(self):
        sim, network, inboxes = make_network(base_delay=2.0)
        network.broadcast("A", "hello")
        network.broadcast("A", "again")
        sim.run()
        assert counter_total(sim, "net.sent") == 2  # one per peer
        for name in ("B", "C"):
            assert [env.payload for env in inboxes[name]] == [
                "hello", "again"]

    def test_bundle_size_histogram_observed(self):
        sim, network, _ = make_network(base_delay=1.0)
        for payload in ("x", "y", "z"):
            network.send("A", "B", payload)
        sim.run()
        [histogram] = sim.metrics.histograms("net.bundle.size")
        assert histogram.values == [3]

    def test_bundle_event_emitted(self):
        sim, network, _ = make_network(base_delay=1.0)
        sim.obs.enable()
        network.send("A", "B", "x")
        network.send("A", "B", "y")
        sim.run()
        bundles = [event for event in sim.obs.events()
                   if event.kind == "net.bundle"]
        assert len(bundles) == 1
        assert bundles[0].size == 2


class TestBundleFaults:
    def test_lost_bundle_drops_whole_and_counts_once(self):
        sim, network, inboxes = make_network(base_delay=2.0,
                                             loss_probability=1.0)
        for payload in ("x", "y", "z"):
            network.send("A", "B", payload)
        sim.run()
        assert inboxes["B"] == []
        assert counter_total(sim, "net.sent") == 1
        assert counter_total(sim, "net.dropped.loss") == 1
        assert counter_total(sim, "net.dropped.partition") == 0

    def test_partitioned_bundle_counts_one_partition_drop(self):
        sim, network, inboxes = make_network(base_delay=2.0)
        network.partition([["A"], ["B", "C"]])
        for payload in ("x", "y"):
            network.send("A", "B", payload)
        sim.run()
        assert inboxes["B"] == []
        assert counter_total(sim, "net.dropped.partition") == 1
        assert counter_total(sim, "net.dropped.loss") == 0

    def test_partition_strikes_bundle_in_flight(self):
        sim, network, inboxes = make_network(base_delay=5.0)
        network.send("A", "B", "x")
        network.send("A", "B", "y")
        sim.at(1.0, lambda: network.partition([["A"], ["B", "C"]]))
        sim.run()
        assert inboxes["B"] == []
        assert counter_total(sim, "net.dropped.partition") == 1

    def test_duplicated_bundle_delivered_twice(self):
        sim, network, inboxes = make_network(base_delay=2.0,
                                             duplicate_probability=1.0)
        network.send("A", "B", "x")
        network.send("A", "B", "y")
        sim.run()
        assert counter_total(sim, "net.sent") == 1
        assert counter_total(sim, "net.delivered") == 2
        payloads = [env.payload for env in inboxes["B"]]
        assert payloads == ["x", "y", "x", "y"]
        assert [env.duplicated for env in inboxes["B"]] == [
            False, False, True, True]

    def test_doomed_bundle_absorbs_window_sends(self):
        """Payloads enqueued while a lost bundle's window is open drop
        with it — one envelope, one loss — exactly as if one big
        message was lost."""
        sim, network, inboxes = make_network(flush_delay=4.0,
                                             base_delay=2.0,
                                             loss_probability=1.0)
        network.send("A", "B", "first")
        sim.at(2.0, lambda: network.send("A", "B", "absorbed"))
        sim.run()
        assert inboxes["B"] == []
        assert counter_total(sim, "net.sent") == 1
        assert counter_total(sim, "net.dropped.loss") == 1

    def test_new_bundle_after_doomed_window_lapses(self):
        sim, network, inboxes = make_network(flush_delay=1.0,
                                             base_delay=2.0)
        link = network.link("A", "B")
        link.fail()
        network.send("A", "B", "lost")
        link.restore()
        sim.at(5.0, lambda: network.send("A", "B", "arrives"))
        sim.run()
        assert [env.payload for env in inboxes["B"]] == ["arrives"]
        assert counter_total(sim, "net.sent") == 2
        assert counter_total(sim, "net.dropped.loss") == 1


class VmHarness:
    """Two VmManagers on one simulator with scriptable delivery."""

    def __init__(self, coalesce_acks=False):
        self.sim = Simulator(1)
        self.wire: list[tuple[str, str, object]] = []
        self.accepted: dict[str, list] = {"A": [], "B": []}
        self.refuse: dict[str, bool] = {"A": False, "B": False}
        self.managers: dict[str, VmManager] = {}
        clock = {"t": 0}

        def ts() -> int:
            clock["t"] += 1
            return clock["t"]

        for name in ("A", "B"):
            def send(dst, payload, src=name):
                self.wire.append((src, dst, payload))

            def accept(entry, src, me=name):
                if self.refuse[me]:
                    return False
                self.accepted[me].append((src, entry))
                return True

            self.managers[name] = VmManager(
                name, self.sim, send=send, accept=accept, clock_ts=ts,
                coalesce_acks=coalesce_acks)

    def flush(self) -> int:
        queued, self.wire = self.wire, []
        for src, dst, payload in queued:
            manager = self.managers[dst]
            if isinstance(payload, VmTransfer):
                manager.on_transfer(payload)
            else:
                manager.on_ack(payload)
        return len(queued)

    def send_value(self, src, dst, item, amount):
        manager = self.managers[src]
        entry = manager.allocate_entry(dst, item, amount, "transfer", "t")
        manager.register_created([entry])
        return entry


class TestAckCoalescing:
    def test_ack_deferred_to_event_end(self):
        """Inside a kernel event the explicit ack waits for the event to
        finish, then goes out once for any number of accepts."""
        h = VmHarness(coalesce_acks=True)
        for amount in (1, 2, 3):
            h.send_value("A", "B", "x", amount)

        def deliver():
            h.flush()

        h.sim.after(1.0, deliver)
        h.sim.run_until(1.0)
        acks = [payload for _s, _d, payload in h.wire
                if isinstance(payload, VmAck)]
        assert len(acks) == 1
        assert acks[0].cumulative == 3

    def test_ack_suppressed_when_piggyback_covers_it(self):
        """A data message to the same peer leaving the same instant
        makes the explicit ack redundant: its piggyback field already
        carries the cumulative value."""
        h = VmHarness(coalesce_acks=True)
        h.send_value("A", "B", "x", 1)

        def deliver_and_reply():
            h.flush()  # B accepts seq 1 (ack deferred to event end) ...
            h.send_value("B", "A", "y", 7)  # ... then owes A data anyway

        h.sim.after(1.0, deliver_and_reply)
        h.sim.run_until(1.0)
        transfers = [payload for _s, _d, payload in h.wire
                     if isinstance(payload, VmTransfer)]
        acks = [payload for _s, _d, payload in h.wire
                if isinstance(payload, VmAck)]
        assert [t.piggyback_ack for t in transfers if t.src == "B"] == [1]
        assert acks == []
        assert h.managers["B"]._c_suppressed.value == 1

    def test_ack_immediate_outside_event_loop(self):
        """With no event executing the deferral is unavailable and the
        ack goes out right away, exactly as without coalescing."""
        h = VmHarness(coalesce_acks=True)
        h.send_value("A", "B", "x", 1)
        h.flush()
        acks = [payload for _s, _d, payload in h.wire
                if isinstance(payload, VmAck)]
        assert len(acks) == 1

    def test_suppression_never_loses_acknowledgement(self):
        """Sender learns the cumulative value from the piggyback: the
        suppressed explicit ack carries no extra information."""
        h = VmHarness(coalesce_acks=True)
        h.send_value("A", "B", "x", 1)

        def deliver_and_reply():
            h.flush()
            h.send_value("B", "A", "y", 7)

        h.sim.after(1.0, deliver_and_reply)
        h.sim.run_until(1.0)
        h.flush()  # B's transfer (with piggyback) reaches A
        assert h.managers["A"].out_channel("B").cumulative_acked == 1
        assert h.managers["A"].unacked_count() == 0


class TestChannelAccounting:
    def test_counters_track_send_and_ack(self):
        h = VmHarness()
        a = h.managers["A"]
        h.send_value("A", "B", "x", 1)
        h.send_value("A", "B", "y", 2)
        assert a.unacked_count() == 2
        assert a.has_outstanding("x") and a.has_outstanding("y")
        assert a.check_accounting()
        h.flush()  # transfers
        h.flush()  # acks
        assert a.unacked_count() == 0
        assert not a.has_outstanding("x")
        assert a.check_accounting()

    def test_partial_ack_prunes_exactly_confirmed(self):
        h = VmHarness()
        a = h.managers["A"]
        for index in range(4):
            h.send_value("A", "B", f"item{index}", 1)
        a.on_ack(VmAck(src="B", cumulative=2, ts=99))
        assert a.unacked_count() == 2
        assert not a.has_outstanding("item0")
        assert a.has_outstanding("item3")
        assert a.check_accounting()

    def test_multiple_vm_same_item(self):
        h = VmHarness()
        a = h.managers["A"]
        h.send_value("A", "B", "x", 1)
        h.send_value("A", "B", "x", 2)
        assert a.has_outstanding("x")
        a.on_ack(VmAck(src="B", cumulative=1, ts=99))
        assert a.has_outstanding("x")  # one of two still live
        a.on_ack(VmAck(src="B", cumulative=2, ts=100))
        assert not a.has_outstanding("x")
        assert a.check_accounting()

    def test_stale_ack_changes_nothing(self):
        h = VmHarness()
        a = h.managers["A"]
        h.send_value("A", "B", "x", 1)
        a.on_ack(VmAck(src="B", cumulative=1, ts=99))
        before = a.unacked_count()
        a.on_ack(VmAck(src="B", cumulative=1, ts=100))  # replay
        a.on_ack(VmAck(src="B", cumulative=0, ts=101))  # stale
        assert a.unacked_count() == before == 0
        assert a.check_accounting()

    def test_restore_entry_rebuilds_counters(self):
        """Recovery re-inserts live entries without create records; the
        counters must follow, and a checkpointed entry plus its create
        record must not double-count."""
        h = VmHarness()
        a = h.managers["A"]
        entry = h.send_value("A", "B", "x", 3)
        rebuilt = VmManager("A", h.sim, send=lambda d, p: None,
                            accept=lambda e, s: True,
                            clock_ts=lambda: 0)
        rebuilt.restore_entry(entry)
        rebuilt.restore_entry(entry)  # checkpoint + log replay overlap
        assert rebuilt.unacked_count() == 1
        assert rebuilt.has_outstanding("x")
        assert rebuilt.check_accounting()
        assert a.check_accounting()


class TestDrainFifo:
    def test_reentrant_drain_stays_fifo(self):
        """An accept callback that re-enters drain only enqueues; the
        outer loop absorbs channels in arrival order (regression for
        the deque rewrite of the drain work queue)."""
        sim = Simulator(1)
        order = []
        manager_box = {}

        def accept(entry, src):
            order.append((src, entry.channel_seq))
            if src == "B" and entry.channel_seq == 1:
                # Re-entrant poke mid-accept, as a lock release does.
                manager_box["m"].drain("C")
            return True

        manager = VmManager("A", sim, send=lambda d, p: None,
                            accept=accept, clock_ts=lambda: 0)
        manager_box["m"] = manager
        for src, seq in (("B", 1), ("B", 2), ("C", 1)):
            channel = manager.in_channel(src)
            channel.pending[seq] = type(
                "E", (), {"channel_seq": seq, "item": "x", "amount": 1,
                          "kind": "transfer", "txn_id": "t",
                          "dst": "A"})()
        manager.drain("B")
        # The nested drain("C") must not run before B finishes.
        assert order == [("B", 1), ("B", 2), ("C", 1)]


def build_system(seed=0, flush_delay=2.0, **kwargs):
    names = ["S0", "S1", "S2", "S3"]
    system = DvPSystem(SystemConfig(
        sites=names, seed=seed, txn_timeout=15.0, retransmit_period=3.0,
        link=LinkConfig(base_delay=1.0, jitter=1.0,
                        **kwargs.pop("link_kwargs", {})),
        bundling=BundlingConfig(flush_delay=flush_delay), **kwargs))
    system.add_item("item", CounterDomain(), total=200)
    return system


def drive_system(system, rate=0.1, duration=150.0, settle=300.0):
    config = WorkloadConfig(
        arrival_rate=rate, duration=duration,
        mix=OpMix(reserve=0.5, cancel=0.4, read=0.1),
        amount_low=1, amount_high=8)
    source = AirlineWorkload(["item"], config)
    collector = Collector()
    WorkloadDriver(system.sim, system, list(system.sites), source,
                   config, collector).install()
    system.run_until(duration)
    system.run_for(settle)
    return collector


class TestBundledSystem:
    @pytest.mark.parametrize("seed", range(3))
    def test_conservation_with_bundling(self, seed):
        system = build_system(seed=seed)
        drive_system(system)
        system.auditor.assert_ok()
        for site in system.sites.values():
            assert site.vm.check_accounting()
        assert len(system.committed()) > 0

    def test_fanned_transfers_suppress_acks(self):
        """Multi-op transfers toward one peer leave several same-instant
        data messages; the piggybacks they carry make the explicit acks
        redundant, and the coalescer counts every one it elides."""
        import random

        names = ["W", "X", "Y", "Z"]
        system = DvPSystem(SystemConfig(
            sites=names, seed=11, txn_timeout=15.0,
            retransmit_period=12.0,
            link=LinkConfig(base_delay=2.0, jitter=1.0),
            bundling=BundlingConfig(flush_delay=2.0)))
        n_items = 32

        class Fanned:
            def __init__(self):
                self.next = {name: 0 for name in names}

            def make_spec(self, rng: random.Random,
                          site: str) -> TransactionSpec:
                peers = [peer for peer in names if peer != site]
                other = rng.choice(peers)
                base = self.next[site]
                self.next[site] = base + 3
                return TransactionSpec(ops=tuple(
                    TransferOp(f"acct_{site}_{(base + j) % n_items}",
                               f"sink_{other}_{(base + j) % n_items}",
                               rng.randint(1, 4))
                    for j in range(3)))

        for name in names:
            split = {peer: 50 for peer in names if peer != name}
            for index in range(n_items):
                system.add_item(f"acct_{name}_{index}", CounterDomain(),
                                split=split)
                system.add_item(f"sink_{name}_{index}", CounterDomain(),
                                split={peer: 1 for peer in names})
        config = WorkloadConfig(arrival_rate=0.3, duration=120.0)
        WorkloadDriver(system.sim, system, names, Fanned(), config,
                       Collector()).install()
        system.run_until(120.0)
        system.run_for(60.0)
        system.auditor.assert_ok()
        assert len(system.committed()) > 0
        assert system.sim.metrics.total("vm.acks_suppressed") > 0

    def test_conservation_with_lossy_bundles(self):
        system = build_system(seed=2, link_kwargs={
            "loss_probability": 0.3})
        drive_system(system)
        system.auditor.assert_ok()
        assert system.sim.metrics.total("net.dropped.loss") > 0

    def test_duplicated_bundles_dedup_per_vm(self):
        """A link that duplicates every bundle redelivers whole payload
        lists; the per-channel sequence numbers discard the replays."""
        system = build_system(seed=3, link_kwargs={
            "duplicate_probability": 1.0})
        drive_system(system, duration=80.0, settle=200.0)
        system.auditor.assert_ok()
        assert system.sim.metrics.total("vm.duplicates") > 0

    def test_crash_recovery_rebuilds_accounting(self):
        system = build_system(seed=4, checkpoint_interval=20)
        config = WorkloadConfig(arrival_rate=0.1, duration=100.0,
                                mix=OpMix(reserve=0.6, cancel=0.4))
        source = AirlineWorkload(["item"], config)
        WorkloadDriver(system.sim, system, list(system.sites), source,
                       config, Collector()).install()
        system.run_until(40.0)
        system.crash("S1")
        system.run_for(10.0)
        system.recover("S1")
        system.run_until(100.0)
        system.run_for(300.0)
        system.auditor.assert_ok()
        for site in system.sites.values():
            assert site.vm.check_accounting()

    def test_outcomes_identical_with_and_without_bundling(self):
        """Conflict-free cross-site transfers decide identically under
        every transport mode; bundling may only change the wire."""
        def run(flush_delay):
            names = ["W", "X", "Y", "Z"]
            if flush_delay is None:
                bundling = None
            else:
                bundling = BundlingConfig(flush_delay=flush_delay)
            system = DvPSystem(SystemConfig(
                sites=names, seed=11, txn_timeout=15.0,
                link=LinkConfig(base_delay=2.0, jitter=1.0),
                bundling=bundling))
            for name in names:
                split = {peer: 50 for peer in names if peer != name}
                system.add_item(f"acct_{name}", CounterDomain(),
                                split=split)
                system.add_item(f"sink_{name}", CounterDomain(),
                                split={peer: 1 for peer in names})
            counters = {name: 0 for name in names}
            for start in range(0, 60, 10):
                for name in names:
                    other = names[(names.index(name) + 1) % len(names)]
                    counters[name] += 1
                    spec = TransactionSpec(ops=(
                        TransferOp(f"acct_{name}", f"sink_{other}", 2),))
                    system.sim.at(float(start + 1),
                                  lambda n=name, s=spec:
                                  system.submit(n, s))
            system.run_until(200.0)
            system.auditor.assert_ok()
            return (len(system.results), len(system.committed()))

        off = run(None)
        same_instant = run(0.0)
        windowed = run(2.0)
        assert off == same_instant == windowed
        assert off[0] > 0
