"""Chaos coverage for the bundled transport: replay determinism and all
three oracles must hold with batching on — coalescing changes *when*
payloads travel and in what envelopes, never what the system decides —
and the committed batching-on repro artifact must stay reproducible."""

import glob
import os

import pytest

from repro.chaos import ChaosConfig, FaultPlan, ReproArtifact, explore
from repro.chaos.runner import run_chaos
from repro.cli import build_parser
from repro.harness.chaos import config_from_args

REPRO_DIR = os.path.join(os.path.dirname(__file__), "repros")


class TestExploreWithBundling:
    @pytest.mark.parametrize("seed", [7, 19, 23])
    def test_budget_200_green(self, seed):
        """The acceptance runs: full budget, batching on, every oracle."""
        report = explore(ChaosConfig(bundle_flush_delay=2.0),
                         budget=200, master_seed=seed)
        assert report.ok, report.describe()

    def test_exploration_deterministic_with_bundling(self):
        config = ChaosConfig(bundle_flush_delay=2.0)
        first = explore(config, budget=6, master_seed=11)
        second = explore(config, budget=6, master_seed=11)
        assert first.digest() == second.digest()

    def test_describe_names_the_bundling(self):
        report = explore(ChaosConfig(bundle_flush_delay=1.5), budget=1,
                         master_seed=3)
        assert "bundle=1.5" in report.describe().splitlines()[0]
        plain = explore(ChaosConfig(), budget=1, master_seed=3)
        assert "bundle" not in plain.describe()


class TestReplayDeterminism:
    def test_same_seed_and_plan_same_fingerprint(self):
        """The chaos engine's core promise survives batching: two runs
        of one (seed, plan) execute the same schedule bit for bit."""
        config = ChaosConfig(bundle_flush_delay=2.0)
        plan = FaultPlan.from_dicts([
            {"at": 20.0, "kind": "crash", "site": "S1"},
            {"at": 30.0, "kind": "recover", "site": "S1"},
            {"at": 12.0, "kind": "partition",
             "groups": [["S0", "S1"], ["S2", "S3"]]},
            {"at": 40.0, "kind": "heal"},
        ])
        first = run_chaos(config, plan, seed=42)
        second = run_chaos(config, plan, seed=42)
        assert first.fingerprint == second.fingerprint
        assert not first.failed, first.failures

    def test_bundling_changes_schedule_not_outcomes(self):
        """Batching on vs. off is a different schedule (different
        fingerprint) but both runs pass every oracle."""
        plan = FaultPlan.from_dicts([
            {"at": 15.0, "kind": "crash", "site": "S2"},
            {"at": 28.0, "kind": "recover", "site": "S2"},
        ])
        off = run_chaos(ChaosConfig(), plan, seed=9)
        on = run_chaos(ChaosConfig(bundle_flush_delay=2.0), plan, seed=9)
        assert off.fingerprint != on.fingerprint
        assert not off.failed and not on.failed


class TestPlumbing:
    def test_cli_args_reach_chaos_config(self):
        args = build_parser().parse_args(
            ["chaos", "--budget", "5", "--bundle-delay", "1.5"])
        assert config_from_args(args).bundle_flush_delay == 1.5

    def test_cli_default_is_no_bundling(self):
        args = build_parser().parse_args(["chaos", "--budget", "5"])
        assert config_from_args(args).bundle_flush_delay is None

    def test_old_config_dicts_still_load(self):
        """Artifacts frozen before the bundling axis predate the key;
        from_dict must default it, not crash."""
        data = ChaosConfig().to_dict()
        del data["bundle_flush_delay"]
        config = ChaosConfig.from_dict(data)
        assert config.bundle_flush_delay is None

    def test_round_trip_preserves_bundling(self):
        config = ChaosConfig(bundle_flush_delay=2.0)
        assert ChaosConfig.from_dict(config.to_dict()) == config


class TestCommittedRepros:
    def bundled_artifacts(self):
        found = []
        for path in sorted(glob.glob(os.path.join(REPRO_DIR, "*.json"))):
            artifact = ReproArtifact.load(path)
            if artifact.config.bundle_flush_delay is not None:
                found.append((path, artifact))
        return found

    def test_bundled_artifact_is_committed(self):
        assert self.bundled_artifacts(), \
            "no bundling-enabled repro artifact is committed"

    def test_bundled_artifacts_still_reproduce(self):
        """Each artifact replays to its recorded oracle verdict under
        its recorded injection — and runs clean without it, proving the
        verdict convicts the injected bug, not the batching."""
        for path, artifact in self.bundled_artifacts():
            result = artifact.replay()  # arms the recorded injection
            assert result.failed_oracles == tuple(
                sorted(artifact.failures)), path
            clean = run_chaos(artifact.config, artifact.plan,
                              artifact.seed)
            assert not clean.failed, (path, clean.failures)
