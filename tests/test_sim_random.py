"""Unit tests for named RNG streams."""

from repro.sim.random import RandomStreams, derive_seed


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_name_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_master_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_64_bit(self):
        assert 0 <= derive_seed(123, "xyz") < 2 ** 64


class TestRandomStreams:
    def test_stream_cached(self):
        streams = RandomStreams(0)
        assert streams.stream("x") is streams.stream("x")

    def test_streams_independent(self):
        # Drawing from one stream must not perturb another: compare a
        # run that interleaves draws with one that does not.
        a1 = RandomStreams(5)
        seq_interleaved = []
        for _ in range(10):
            a1.stream("noise").random()
            seq_interleaved.append(a1.stream("signal").random())
        a2 = RandomStreams(5)
        seq_pure = [a2.stream("signal").random() for _ in range(10)]
        assert seq_interleaved == seq_pure

    def test_same_seed_same_draws(self):
        one = RandomStreams(9).stream("s")
        two = RandomStreams(9).stream("s")
        assert [one.random() for _ in range(5)] == \
            [two.random() for _ in range(5)]

    def test_different_seed_different_draws(self):
        one = RandomStreams(9).stream("s")
        two = RandomStreams(10).stream("s")
        assert [one.random() for _ in range(5)] != \
            [two.random() for _ in range(5)]

    def test_fork_is_independent_of_parent(self):
        parent = RandomStreams(3)
        child = parent.fork("child")
        assert child.stream("s").random() != parent.stream("s").random()

    def test_fork_deterministic(self):
        a = RandomStreams(3).fork("c").stream("s").random()
        b = RandomStreams(3).fork("c").stream("s").random()
        assert a == b
