"""Unit tests for the serving front-end: queues, admission, routers."""

import pytest

from repro.core.domain import CounterDomain
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import DecrementOp, TransactionSpec
from repro.metrics.collector import Collector
from repro.serving import (
    DepthBoard,
    LeastQueueRouter,
    LocalityRouter,
    Overload,
    RandomRouter,
    ServingConfig,
    ServingFrontend,
)


def build(**config_kwargs):
    system = DvPSystem(SystemConfig(sites=["A", "B", "C"], seed=9))
    system.add_item("f", CounterDomain(), total=1000)
    collector = Collector()
    frontend = ServingFrontend(system, ServingConfig(**config_kwargs),
                               collector)
    return system, frontend, collector


def spec(work=1.0):
    return TransactionSpec(ops=(DecrementOp("f", 1),), label="r",
                           work=work)


class _FixedRouter:
    name = "fixed"

    def __init__(self, target):
        self.target = target

    def route(self, origin, request):
        return self.target


class _FakeQueue:
    def __init__(self, load):
        self.load = load


class TestServingConfig:
    def test_unknown_router_rejected(self):
        with pytest.raises(ValueError):
            ServingConfig(router="clairvoyant")

    def test_bad_inflight_rejected(self):
        with pytest.raises(ValueError):
            ServingConfig(max_inflight=0)

    def test_bad_board_period_rejected(self):
        with pytest.raises(ValueError):
            ServingConfig(board_period=0.0)


class TestSiteQueue:
    def test_load_leveling_caps_inflight(self):
        # Distinct items: under conc1 a same-item conflict aborts
        # instantly and would free the slot synchronously.
        system, frontend, collector = build(max_inflight=2, max_depth=10)
        for index in range(6):
            system.add_item(f"g{index}", CounterDomain(), total=10)
        queue = frontend.queues["A"]
        for index in range(6):
            one = TransactionSpec(ops=(DecrementOp(f"g{index}", 1),),
                                  label="r", work=1.0)
            assert queue.offer(one, "A", collector.on_result) is None
        assert queue.inflight == 2
        assert queue.depth == 4
        system.sim.run_until(100.0)
        assert queue.inflight == 0
        assert queue.depth == 0
        assert len(collector.results) == 6
        assert len(frontend.samples) == 6
        assert frontend.dispatched == 6

    def test_depth_bound_sheds(self):
        system, frontend, collector = build(max_inflight=1, max_depth=2)
        queue = frontend.queues["A"]
        refused = [queue.offer(spec(), "A") for _ in range(5)]
        sheds = [r for r in refused if r is not None]
        assert len(sheds) == 2
        assert all(isinstance(s, Overload) for s in sheds)
        assert all(s.reason == "depth" for s in sheds)
        assert collector.shed == 2
        assert frontend.overloads == sheds

    def test_wait_bound_sheds(self):
        system, frontend, collector = build(
            max_inflight=1, max_depth=None, max_wait=0.5,
            service_estimate=10.0)
        queue = frontend.queues["A"]
        assert queue.offer(spec(), "A") is None   # straight to a slot
        assert queue.offer(spec(), "A") is None   # waits ~0 behind it
        refused = queue.offer(spec(), "A")
        assert refused is not None
        assert refused.reason == "wait"
        assert refused.estimated_wait == pytest.approx(10.0)

    def test_queue_wait_counts_in_latency(self):
        system, frontend, collector = build(max_inflight=1, max_depth=10)
        queue = frontend.queues["A"]
        for _ in range(3):
            queue.offer(spec(work=2.0), "A")
        system.sim.run_until(100.0)
        waits = [s.queue_wait for s in frontend.samples]
        assert waits[0] == 0.0
        assert waits[1] > 0.0
        assert all(s.latency >= s.queue_wait for s in frontend.samples)

    def test_dispatch_to_crashed_site_sheds_typed(self):
        system, frontend, collector = build(max_inflight=1)
        system.crash("A")
        queue = frontend.queues["A"]
        assert queue.offer(spec(), "A") is None
        assert queue.inflight == 0
        assert collector.shed == 1
        assert frontend.overloads[-1].reason == "site-down"

    def test_service_estimate_tracks_completions(self):
        system, frontend, collector = build(max_inflight=1)
        queue = frontend.queues["A"]
        seeded = queue.service_est
        queue.offer(spec(work=5.0), "A")
        system.sim.run_until(100.0)
        assert queue.service_est != seeded
        assert queue.service_est > 0.0

    def test_quiesce_sheds_backlog_and_refuses(self):
        system, frontend, collector = build(max_inflight=1, max_depth=10)
        queue = frontend.queues["A"]
        for _ in range(4):
            queue.offer(spec(), "A")
        drained = frontend.quiesce()
        assert drained == 3            # one is in flight, three queued
        assert queue.depth == 0
        assert all(o.reason == "shutdown" for o in frontend.overloads)
        late = queue.offer(spec(), "A")
        assert late is not None and late.reason == "shutdown"


class TestDepthBoard:
    def test_snapshot_only_moves_on_refresh(self):
        board = DepthBoard({"A": _FakeQueue(0), "B": _FakeQueue(5)})
        assert board.snapshot == {"A": 0, "B": 0}
        board.refresh()
        assert board.snapshot == {"A": 0, "B": 5}

    def test_least_loaded_prefers_origin_on_ties(self):
        board = DepthBoard({"A": _FakeQueue(1), "B": _FakeQueue(1),
                            "C": _FakeQueue(1)})
        board.refresh()
        assert board.least_loaded(["A", "B", "C"], prefer="B") == "B"
        assert board.least_loaded(["A", "C"], prefer="B") == "A"

    def test_refresh_chain_runs_at_barriers(self):
        system, frontend, collector = build(board_period=2.0)
        frontend.start()
        before = frontend.board.refreshes
        system.sim.run_until(10.0)
        ran = frontend.board.refreshes
        assert ran >= before + 4
        frontend.stop()
        system.sim.run_until(20.0)
        assert frontend.board.refreshes == ran


class TestRouters:
    def test_random_router_is_seed_deterministic(self):
        def routes(seed):
            system = DvPSystem(SystemConfig(sites=["A", "B", "C"],
                                            seed=seed))
            router = RandomRouter(system.sim, ["A", "B", "C"])
            return [router.route("A", spec()) for _ in range(40)]

        assert routes(3) == routes(3)
        assert routes(3) != routes(4)

    def test_least_queue_keeps_origin_within_slack(self):
        board = DepthBoard({"A": _FakeQueue(0), "B": _FakeQueue(2),
                            "C": _FakeQueue(9)})
        board.refresh()
        router = LeastQueueRouter(board, slack=2)
        assert router.route("B", spec()) == "B"   # within slack of A
        assert router.route("C", spec()) == "A"   # genuinely hot

    def test_locality_routes_to_an_owner(self):
        system, frontend, collector = build(router="locality")
        owners = system.directory.owners("f")
        assert owners
        target = frontend.router.route("A", spec())
        assert target in owners

    def test_locality_without_items_stays_at_origin(self):
        system, frontend, collector = build(router="locality")
        empty = TransactionSpec(ops=(), label="noop")
        assert frontend.router.route("B", empty) == "B"


class TestFrontendSubmit:
    def test_same_site_refusal_returned_synchronously(self):
        system, frontend, collector = build(max_inflight=1, max_depth=1)
        frontend.router = _FixedRouter("A")
        assert frontend.submit("A", spec()) is None
        assert frontend.submit("A", spec()) is None
        refused = frontend.submit("A", spec())
        assert isinstance(refused, Overload)
        assert refused.reason == "depth"

    def test_cross_site_forward_lands_on_target(self):
        system, frontend, collector = build(max_inflight=2)
        frontend.router = _FixedRouter("B")
        assert frontend.submit("A", spec(), collector.on_result) is None
        system.sim.run_until(100.0)
        assert len(frontend.samples) == 1
        assert frontend.samples[0].site == "B"
        assert len(collector.results) == 1

    def test_shed_events_emitted_when_obs_enabled(self):
        system, frontend, collector = build(max_inflight=1, max_depth=1)
        system.sim.obs.enable()
        queue = frontend.queues["A"]
        for _ in range(4):
            queue.offer(spec(), "A")
        kinds = {event.kind for event in system.sim.obs.events()}
        assert "serve.enqueue" in kinds
        assert "serve.dequeue" in kinds
        assert "serve.shed" in kinds


class TestWindowStats:
    def make(self, arrived, wait=0.5, service=1.0, committed=True):
        from repro.metrics.windows import ServeSample
        return ServeSample(site="A", arrived_at=arrived,
                           dispatched_at=arrived + wait,
                           finished_at=arrived + wait + service,
                           committed=committed)

    def test_buckets_key_on_arrival_time(self):
        from repro.metrics.windows import window_stats
        samples = [self.make(1.0), self.make(9.5),       # window 0
                   self.make(12.0, committed=False)]     # window 1
        stats = window_stats(samples, shed_times=[3.0, 14.0],
                             start=0.0, end=20.0, width=10.0)
        assert len(stats) == 2
        first, second = stats
        assert (first.offered, first.shed, first.committed) == (3, 1, 2)
        assert (second.offered, second.shed, second.aborted) == (2, 1, 1)
        assert first.shed_rate == pytest.approx(1 / 3)
        assert second.abort_rate == 1.0

    def test_latency_is_client_perceived(self):
        from repro.metrics.windows import window_stats
        stats = window_stats([self.make(0.0, wait=2.0, service=1.0)],
                             [], start=0.0, end=5.0, width=5.0)
        assert stats[0].p50 == pytest.approx(3.0)
        assert stats[0].mean_wait == pytest.approx(2.0)

    def test_out_of_range_samples_ignored(self):
        from repro.metrics.windows import window_stats
        stats = window_stats([self.make(99.0)], [99.5],
                             start=0.0, end=10.0, width=5.0)
        assert all(stat.offered == 0 for stat in stats)

    def test_bad_width_rejected(self):
        from repro.metrics.windows import window_stats
        with pytest.raises(ValueError):
            window_stats([], [], 0.0, 10.0, 0.0)
