"""Repository-root pytest configuration.

Ensures the src layout is importable even when the package has not
been pip-installed (e.g. offline environments without the `wheel`
package, where PEP 660 editable installs cannot be built).
"""

import pathlib
import sys

_SRC = str(pathlib.Path(__file__).parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
